//! The Acheron memtable: an arena-backed skiplist write buffer that
//! additionally maintains the tombstone statistics (count, oldest
//! tombstone tick, secondary delete-key fences) that FADE and KiWi
//! consume once the buffer is flushed into an SSTable.

pub mod memtable;
pub mod skiplist;

pub use memtable::{LookupResult, Memtable, MemtableStats};
pub use skiplist::{SkipIter, SkipList};

#[cfg(test)]
mod proptests {
    //! Property test: the memtable's visibility semantics are equivalent
    //! to a reference model (a map from key to version history).
    use std::collections::BTreeMap;

    use acheron_types::Entry;
    use bytes::Bytes;
    use proptest::prelude::*;

    use crate::memtable::{LookupResult, Memtable};

    #[derive(Debug, Clone)]
    enum Op {
        Put(u8, u8),
        Del(u8),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Op::Put(k % 16, v)),
            any::<u8>().prop_map(|k| Op::Del(k % 16)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn memtable_matches_model(ops in prop::collection::vec(op_strategy(), 1..200)) {
            let mem = Memtable::new();
            // model: key -> version history of (seqno, Option<value>)
            type History = Vec<(u64, Option<Vec<u8>>)>;
            let mut model: BTreeMap<Vec<u8>, History> = BTreeMap::new();
            for (i, op) in ops.iter().enumerate() {
                let seq = i as u64 + 1;
                match op {
                    Op::Put(k, v) => {
                        let key = vec![*k];
                        mem.insert(Entry::put(key.clone(), vec![*v], seq, 0));
                        model.entry(key).or_default().push((seq, Some(vec![*v])));
                    }
                    Op::Del(k) => {
                        let key = vec![*k];
                        mem.insert(Entry::tombstone(key.clone(), seq, seq));
                        model.entry(key).or_default().push((seq, None));
                    }
                }
            }
            let max_seq = ops.len() as u64;
            // Check every key at several snapshots.
            for k in 0u8..16 {
                let key = vec![k];
                for snap in [0, max_seq / 2, max_seq, max_seq + 5] {
                    let expected = model
                        .get(&key)
                        .and_then(|hist| {
                            hist.iter().rev().find(|(s, _)| *s <= snap).map(|(_, v)| v.clone())
                        });
                    let got = mem.get(&key, snap);
                    match expected {
                        None => prop_assert_eq!(got, LookupResult::NotFound),
                        Some(None) => prop_assert_eq!(got, LookupResult::Deleted),
                        Some(Some(v)) => {
                            prop_assert_eq!(got, LookupResult::Found(Bytes::from(v)))
                        }
                    }
                }
            }
            // Stats invariant: tombstone count matches the model.
            let model_tombstones = ops.iter().filter(|o| matches!(o, Op::Del(_))).count();
            prop_assert_eq!(mem.stats().tombstones, model_tombstones);
        }
    }
}
