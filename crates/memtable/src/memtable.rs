//! The memtable: a skiplist plus the delete-aware statistics Acheron
//! threads through the write path.
//!
//! Besides entries, the memtable tracks — at O(1) per write — the
//! tombstone count, the *earliest tombstone tick* (the age seed FADE
//! uses once the memtable is flushed into a file), and the min/max of
//! the secondary delete key over all entries (the file's delete-key
//! fence, which lets secondary range deletes skip non-overlapping
//! files/tiles entirely).
//!
//! Concurrency matches the skiplist's: one externally-serialized writer
//! (`insert` takes `&self`; the commit leader is the only caller for the
//! active memtable), lock-free concurrent readers. Statistics are
//! atomics with sentinel emptiness (`u64::MAX` minima / `0` maxima)
//! resolved against the entry/tombstone counts, which are incremented
//! with `Release` ordering *after* the stat updates they cover.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

use acheron_types::{
    Entry, FragmentedRangeTombstones, InternalKey, KeyRangeTombstone, SeqNo, Tick, ValueKind,
};
use bytes::Bytes;

use crate::skiplist::{SkipIter, SkipList};

/// Outcome of a memtable point lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LookupResult {
    /// A put visible at the snapshot; holds the value.
    Found(Bytes),
    /// A point tombstone visible at the snapshot: the key is deleted and
    /// lower levels must NOT be consulted.
    Deleted,
    /// No entry for the key at this snapshot; consult older data.
    NotFound,
}

/// Aggregate statistics maintained incrementally by the memtable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemtableStats {
    /// Number of entries (puts + tombstones).
    pub entries: usize,
    /// Number of point tombstones.
    pub tombstones: usize,
    /// Tick of the oldest (earliest-issued) tombstone, if any.
    pub oldest_tombstone_tick: Option<Tick>,
    /// Minimum secondary delete key across all entries, if non-empty.
    pub min_dkey: Option<u64>,
    /// Maximum secondary delete key across all entries, if non-empty.
    pub max_dkey: Option<u64>,
    /// Number of buffered sort-key range tombstones.
    pub range_tombstones: usize,
    /// Tick of the oldest buffered sort-key range tombstone, if any.
    pub oldest_range_tombstone_tick: Option<Tick>,
}

/// Sort-key range tombstones buffered alongside the skiplist, plus the
/// fragmented index rebuilt after each mutation. Readers clone the `Arc`
/// under a brief read lock; the single writer rebuilds under the write
/// lock. Range deletes are rare, so rebuild cost is irrelevant.
#[derive(Default)]
struct RangeTombstoneBuffer {
    list: Vec<KeyRangeTombstone>,
    index: Arc<FragmentedRangeTombstones>,
}

/// An in-memory write buffer ordered by internal key.
pub struct Memtable {
    list: SkipList,
    tombstones: AtomicUsize,
    /// `u64::MAX` until the first tombstone arrives.
    oldest_tombstone_tick: AtomicU64,
    /// `u64::MAX` / `0` sentinels, valid only while non-empty.
    min_dkey: AtomicU64,
    max_dkey: AtomicU64,
    /// Smallest and largest seqno buffered, for WAL truncation decisions.
    min_seqno: AtomicU64,
    max_seqno: AtomicU64,
    user_bytes: AtomicU64,
    /// Buffered sort-key range tombstones; count mirrored in an atomic so
    /// emptiness checks stay lock-free.
    range_tombstones: RwLock<RangeTombstoneBuffer>,
    range_tombstone_count: AtomicUsize,
    /// `u64::MAX` until the first range tombstone arrives.
    oldest_range_tombstone_tick: AtomicU64,
    range_tombstone_bytes: AtomicUsize,
}

impl Memtable {
    /// An empty memtable.
    pub fn new() -> Memtable {
        Memtable {
            list: SkipList::new(),
            tombstones: AtomicUsize::new(0),
            oldest_tombstone_tick: AtomicU64::new(u64::MAX),
            min_dkey: AtomicU64::new(u64::MAX),
            max_dkey: AtomicU64::new(0),
            min_seqno: AtomicU64::new(u64::MAX),
            max_seqno: AtomicU64::new(0),
            user_bytes: AtomicU64::new(0),
            range_tombstones: RwLock::new(RangeTombstoneBuffer::default()),
            range_tombstone_count: AtomicUsize::new(0),
            oldest_range_tombstone_tick: AtomicU64::new(u64::MAX),
            range_tombstone_bytes: AtomicUsize::new(0),
        }
    }

    /// Insert a put or point tombstone.
    ///
    /// Callers must serialize inserts (single-writer contract, see the
    /// skiplist); readers may run concurrently.
    ///
    /// For tombstones, `entry.dkey` must be the tick the delete was
    /// issued at (the engine guarantees this); it seeds FADE's aging.
    pub fn insert(&self, entry: Entry) {
        debug_assert!(
            entry.kind != ValueKind::RangeTombstone,
            "secondary range tombstones are tracked in the version, not the memtable"
        );
        debug_assert!(
            entry.kind != ValueKind::KeyRangeTombstone,
            "sort-key range tombstones go through add_range_tombstone, not insert"
        );
        // Stat updates land before the counter increments that make
        // them observable (see struct docs).
        self.min_dkey.fetch_min(entry.dkey, Ordering::Relaxed);
        self.max_dkey.fetch_max(entry.dkey, Ordering::Relaxed);
        self.min_seqno.fetch_min(entry.seqno, Ordering::Relaxed);
        self.max_seqno.fetch_max(entry.seqno, Ordering::Relaxed);
        self.user_bytes.fetch_add(
            (entry.key.len() + entry.value.len()) as u64,
            Ordering::Relaxed,
        );
        if entry.is_tombstone() {
            self.oldest_tombstone_tick
                .fetch_min(entry.dkey, Ordering::Relaxed);
            self.tombstones.fetch_add(1, Ordering::Release);
        }
        self.list.insert(entry);
    }

    /// Buffer a sort-key range tombstone and rebuild the fragment index.
    ///
    /// Same single-writer contract as [`Memtable::insert`]; readers pick
    /// up the new index on their next [`Memtable::range_tombstones`]
    /// call. The tombstone's seqno participates in the memtable's seqno
    /// span so WAL truncation and sealing account for it.
    pub fn add_range_tombstone(&self, krt: KeyRangeTombstone) {
        self.min_seqno.fetch_min(krt.seqno, Ordering::Relaxed);
        self.max_seqno.fetch_max(krt.seqno, Ordering::Relaxed);
        self.oldest_range_tombstone_tick
            .fetch_min(krt.dkey, Ordering::Relaxed);
        self.range_tombstone_bytes
            .fetch_add(krt.start.len() + krt.end.len() + 64, Ordering::Relaxed);
        let mut buf = self.range_tombstones.write().expect("krt lock poisoned");
        buf.list.push(krt);
        buf.index = Arc::new(FragmentedRangeTombstones::build(&buf.list));
        drop(buf);
        // Count last: a reader that observes the count sees the index.
        self.range_tombstone_count.fetch_add(1, Ordering::Release);
    }

    /// The fragmented index over buffered sort-key range tombstones.
    pub fn range_tombstones(&self) -> Arc<FragmentedRangeTombstones> {
        self.range_tombstones
            .read()
            .expect("krt lock poisoned")
            .index
            .clone()
    }

    /// The raw buffered sort-key range tombstones (used by flush).
    pub fn range_tombstone_list(&self) -> Vec<KeyRangeTombstone> {
        self.range_tombstones
            .read()
            .expect("krt lock poisoned")
            .list
            .clone()
    }

    /// Number of buffered sort-key range tombstones.
    pub fn range_tombstone_count(&self) -> usize {
        self.range_tombstone_count.load(Ordering::Acquire)
    }

    /// Newest buffered range-tombstone seqno covering `user_key` visible
    /// at `snapshot`, or `None`. Lock-free fast path when no range
    /// tombstones are buffered.
    pub fn range_cover(&self, user_key: &[u8], snapshot: SeqNo) -> Option<SeqNo> {
        if self.range_tombstone_count() == 0 {
            return None;
        }
        self.range_tombstones()
            .max_seqno_covering(user_key, snapshot)
    }

    /// Point lookup at snapshot `snapshot` (visible seqnos are `<= snapshot`).
    pub fn get(&self, user_key: &[u8], snapshot: SeqNo) -> LookupResult {
        let seek_key = InternalKey::for_seek(user_key, snapshot);
        let mut it = self.list.iter();
        it.seek(seek_key.encoded());
        if !it.valid() {
            return LookupResult::NotFound;
        }
        let entry = it.entry();
        if entry.key != user_key {
            return LookupResult::NotFound;
        }
        debug_assert!(entry.seqno <= snapshot);
        match entry.kind {
            ValueKind::Put | ValueKind::ValuePointer => LookupResult::Found(entry.value.clone()),
            ValueKind::Tombstone => LookupResult::Deleted,
            ValueKind::RangeTombstone | ValueKind::KeyRangeTombstone => LookupResult::NotFound,
        }
    }

    /// The newest version of `user_key` visible at `snapshot`, if any.
    ///
    /// Unlike [`Memtable::get`] this returns the raw entry (tombstones
    /// included) so the engine's early-exit lookup can compare its seqno
    /// against other sources and shadow-check range tombstones.
    pub fn newest_visible(&self, user_key: &[u8], snapshot: SeqNo) -> Option<Entry> {
        let seek_key = InternalKey::for_seek(user_key, snapshot);
        let mut it = self.list.iter();
        it.seek(seek_key.encoded());
        if !it.valid() {
            return None;
        }
        let entry = it.entry();
        if entry.key != user_key {
            return None;
        }
        debug_assert!(entry.seqno <= snapshot);
        Some(entry.clone())
    }

    /// All versions of `user_key` visible at `snapshot`, newest first.
    ///
    /// The engine gathers full chains from every source and picks the
    /// globally newest (newest-version-decides semantics); a chain from
    /// one source alone cannot decide, since a newer version may live in
    /// another source.
    pub fn versions(&self, user_key: &[u8], snapshot: SeqNo) -> Vec<Entry> {
        let seek_key = InternalKey::for_seek(user_key, snapshot);
        let mut it = self.list.iter();
        it.seek(seek_key.encoded());
        let mut out = Vec::new();
        while it.valid() {
            let entry = it.entry();
            if entry.key != user_key {
                break;
            }
            debug_assert!(entry.seqno <= snapshot);
            out.push(entry.clone());
            it.next();
        }
        out
    }

    /// A cursor over the memtable in internal-key order.
    pub fn iter(&self) -> SkipIter<'_> {
        self.list.iter()
    }

    /// Entries in internal-key order (used by flush).
    pub fn entries(&self) -> impl Iterator<Item = &Entry> + '_ {
        self.list.entries()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// True if empty: no entries *and* no buffered range tombstones (a
    /// range-delete-only memtable still needs sealing and flushing).
    pub fn is_empty(&self) -> bool {
        self.list.is_empty() && self.range_tombstone_count() == 0
    }

    /// Approximate heap footprint in bytes; the engine flushes when this
    /// exceeds the configured write-buffer size.
    pub fn approximate_bytes(&self) -> usize {
        self.list.approximate_bytes() + self.range_tombstone_bytes.load(Ordering::Relaxed)
    }

    /// Total user payload bytes (key+value) accepted, for
    /// write-amplification denominators.
    pub fn user_bytes(&self) -> u64 {
        self.user_bytes.load(Ordering::Relaxed)
    }

    /// Smallest seqno buffered (entries and range tombstones).
    pub fn min_seqno(&self) -> Option<SeqNo> {
        if self.is_empty() {
            None
        } else {
            Some(self.min_seqno.load(Ordering::Relaxed))
        }
    }

    /// Largest seqno buffered (entries and range tombstones).
    pub fn max_seqno(&self) -> Option<SeqNo> {
        if self.is_empty() {
            None
        } else {
            Some(self.max_seqno.load(Ordering::Relaxed))
        }
    }

    /// The incremental statistics.
    pub fn stats(&self) -> MemtableStats {
        // Acquire the counters first: stat stores for every counted
        // entry happened-before the counter increments.
        let entries = self.list.len();
        let tombstones = self.tombstones.load(Ordering::Acquire);
        let range_tombstones = self.range_tombstone_count();
        MemtableStats {
            entries,
            tombstones,
            oldest_tombstone_tick: if tombstones == 0 {
                None
            } else {
                Some(self.oldest_tombstone_tick.load(Ordering::Relaxed))
            },
            min_dkey: if entries == 0 {
                None
            } else {
                Some(self.min_dkey.load(Ordering::Relaxed))
            },
            max_dkey: if entries == 0 {
                None
            } else {
                Some(self.max_dkey.load(Ordering::Relaxed))
            },
            range_tombstones,
            oldest_range_tombstone_tick: if range_tombstones == 0 {
                None
            } else {
                Some(self.oldest_range_tombstone_tick.load(Ordering::Relaxed))
            },
        }
    }
}

impl Default for Memtable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(m: &Memtable, k: &str, v: &str, seq: SeqNo, dkey: u64) {
        m.insert(Entry::put(
            k.as_bytes().to_vec(),
            v.as_bytes().to_vec(),
            seq,
            dkey,
        ));
    }

    fn del(m: &Memtable, k: &str, seq: SeqNo, tick: Tick) {
        m.insert(Entry::tombstone(k.as_bytes().to_vec(), seq, tick));
    }

    #[test]
    fn get_returns_latest_visible_version() {
        let m = Memtable::new();
        put(&m, "k", "v1", 1, 0);
        put(&m, "k", "v2", 5, 0);
        assert_eq!(
            m.get(b"k", 10),
            LookupResult::Found(Bytes::from_static(b"v2"))
        );
        assert_eq!(
            m.get(b"k", 4),
            LookupResult::Found(Bytes::from_static(b"v1"))
        );
        assert_eq!(
            m.get(b"k", 5),
            LookupResult::Found(Bytes::from_static(b"v2"))
        );
    }

    #[test]
    fn get_sees_tombstone_as_deleted() {
        let m = Memtable::new();
        put(&m, "k", "v1", 1, 0);
        del(&m, "k", 2, 100);
        assert_eq!(m.get(b"k", 10), LookupResult::Deleted);
        // The old version is still visible to an older snapshot.
        assert_eq!(
            m.get(b"k", 1),
            LookupResult::Found(Bytes::from_static(b"v1"))
        );
    }

    #[test]
    fn get_missing_key() {
        let m = Memtable::new();
        put(&m, "a", "v", 1, 0);
        put(&m, "c", "v", 2, 0);
        assert_eq!(m.get(b"b", 10), LookupResult::NotFound);
        assert_eq!(m.get(b"", 10), LookupResult::NotFound);
        assert_eq!(m.get(b"zzz", 10), LookupResult::NotFound);
    }

    #[test]
    fn snapshot_older_than_all_writes_sees_nothing() {
        let m = Memtable::new();
        put(&m, "k", "v", 5, 0);
        assert_eq!(m.get(b"k", 4), LookupResult::NotFound);
    }

    #[test]
    fn newest_visible_returns_raw_entry() {
        let m = Memtable::new();
        put(&m, "k", "v1", 1, 7);
        del(&m, "k", 3, 100);
        let e = m.newest_visible(b"k", 10).unwrap();
        assert_eq!(e.seqno, 3);
        assert!(e.is_tombstone());
        let e = m.newest_visible(b"k", 2).unwrap();
        assert_eq!(e.seqno, 1);
        assert_eq!(e.dkey, 7);
        assert!(m.newest_visible(b"zz", 10).is_none());
        assert!(m.newest_visible(b"k", 0).is_none());
    }

    #[test]
    fn versions_returns_full_visible_chain_newest_first() {
        let m = Memtable::new();
        put(&m, "k", "v1", 1, 10);
        put(&m, "k", "v2", 3, 20);
        del(&m, "k", 5, 30);
        put(&m, "j", "x", 2, 0);
        let vs = m.versions(b"k", 10);
        let seqs: Vec<SeqNo> = vs.iter().map(|e| e.seqno).collect();
        assert_eq!(seqs, vec![5, 3, 1]);
        assert!(vs[0].is_tombstone());
        // Snapshot cuts the chain.
        let vs = m.versions(b"k", 3);
        assert_eq!(vs.len(), 2);
        assert_eq!(vs[0].seqno, 3);
        // Missing key.
        assert!(m.versions(b"zz", 10).is_empty());
    }

    #[test]
    fn tombstone_statistics() {
        let m = Memtable::new();
        assert_eq!(m.stats().tombstones, 0);
        assert_eq!(m.stats().oldest_tombstone_tick, None);
        put(&m, "a", "v", 1, 10);
        del(&m, "b", 2, 300);
        del(&m, "c", 3, 200);
        let s = m.stats();
        assert_eq!(s.entries, 3);
        assert_eq!(s.tombstones, 2);
        assert_eq!(s.oldest_tombstone_tick, Some(200));
    }

    #[test]
    fn delete_key_fences() {
        let m = Memtable::new();
        put(&m, "a", "v", 1, 50);
        put(&m, "b", "v", 2, 10);
        put(&m, "c", "v", 3, 99);
        let s = m.stats();
        assert_eq!(s.min_dkey, Some(10));
        assert_eq!(s.max_dkey, Some(99));
    }

    #[test]
    fn seqno_range_tracked() {
        let m = Memtable::new();
        assert_eq!(m.min_seqno(), None);
        put(&m, "a", "v", 7, 0);
        put(&m, "b", "v", 3, 0);
        put(&m, "c", "v", 9, 0);
        assert_eq!(m.min_seqno(), Some(3));
        assert_eq!(m.max_seqno(), Some(9));
    }

    #[test]
    fn user_bytes_counts_keys_and_values_only() {
        let m = Memtable::new();
        put(&m, "ab", "xyz", 1, 0); // 2 + 3
        del(&m, "cd", 2, 0); // 2 + 0
        assert_eq!(m.user_bytes(), 7);
    }

    fn krt(start: &str, end: &str, seq: SeqNo, tick: Tick) -> KeyRangeTombstone {
        KeyRangeTombstone {
            start: Bytes::copy_from_slice(start.as_bytes()),
            end: Bytes::copy_from_slice(end.as_bytes()),
            seqno: seq,
            dkey: tick,
        }
    }

    #[test]
    fn range_tombstone_buffering_and_cover() {
        let m = Memtable::new();
        assert_eq!(m.range_cover(b"k", u64::MAX), None);
        m.add_range_tombstone(krt("b", "d", 5, 100));
        assert_eq!(m.range_cover(b"c", u64::MAX), Some(5));
        assert_eq!(m.range_cover(b"c", 4), None, "snapshot predates delete");
        assert_eq!(m.range_cover(b"e", u64::MAX), None);
        m.add_range_tombstone(krt("c", "f", 9, 120));
        assert_eq!(m.range_cover(b"c", u64::MAX), Some(9));
        assert_eq!(m.range_cover(b"c", 6), Some(5), "older still covers");
        assert_eq!(m.range_tombstone_count(), 2);
        assert_eq!(m.range_tombstone_list().len(), 2);
    }

    #[test]
    fn range_tombstones_participate_in_emptiness_and_seqno_span() {
        let m = Memtable::new();
        assert!(m.is_empty());
        m.add_range_tombstone(krt("a", "z", 7, 3));
        assert!(!m.is_empty(), "range-delete-only memtable is not empty");
        assert_eq!(m.len(), 0, "len counts entries only");
        assert_eq!(m.min_seqno(), Some(7));
        assert_eq!(m.max_seqno(), Some(7));
        put(&m, "k", "v", 9, 0);
        assert_eq!(m.min_seqno(), Some(7));
        assert_eq!(m.max_seqno(), Some(9));
        assert!(m.approximate_bytes() > 0);
    }

    #[test]
    fn range_tombstone_statistics() {
        let m = Memtable::new();
        let s = m.stats();
        assert_eq!(s.range_tombstones, 0);
        assert_eq!(s.oldest_range_tombstone_tick, None);
        m.add_range_tombstone(krt("a", "c", 1, 50));
        m.add_range_tombstone(krt("x", "z", 2, 20));
        let s = m.stats();
        assert_eq!(s.range_tombstones, 2);
        assert_eq!(s.oldest_range_tombstone_tick, Some(20));
        assert_eq!(s.entries, 0);
        assert_eq!(s.tombstones, 0);
    }

    #[test]
    fn entries_iterate_in_internal_key_order() {
        let m = Memtable::new();
        put(&m, "b", "v1", 1, 0);
        put(&m, "a", "v2", 2, 0);
        del(&m, "a", 3, 0);
        let got: Vec<(Vec<u8>, SeqNo)> = m.entries().map(|e| (e.key.to_vec(), e.seqno)).collect();
        assert_eq!(
            got,
            vec![(b"a".to_vec(), 3), (b"a".to_vec(), 2), (b"b".to_vec(), 1)]
        );
    }
}
