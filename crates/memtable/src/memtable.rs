//! The memtable: a skiplist plus the delete-aware statistics Acheron
//! threads through the write path.
//!
//! Besides entries, the memtable tracks — at O(1) per write — the
//! tombstone count, the *earliest tombstone tick* (the age seed FADE
//! uses once the memtable is flushed into a file), and the min/max of
//! the secondary delete key over all entries (the file's delete-key
//! fence, which lets secondary range deletes skip non-overlapping
//! files/tiles entirely).

use acheron_types::{Entry, InternalKey, SeqNo, Tick, ValueKind};
use bytes::Bytes;

use crate::skiplist::{SkipIter, SkipList};

/// Outcome of a memtable point lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LookupResult {
    /// A put visible at the snapshot; holds the value.
    Found(Bytes),
    /// A point tombstone visible at the snapshot: the key is deleted and
    /// lower levels must NOT be consulted.
    Deleted,
    /// No entry for the key at this snapshot; consult older data.
    NotFound,
}

/// Aggregate statistics maintained incrementally by the memtable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemtableStats {
    /// Number of entries (puts + tombstones).
    pub entries: usize,
    /// Number of point tombstones.
    pub tombstones: usize,
    /// Tick of the oldest (earliest-issued) tombstone, if any.
    pub oldest_tombstone_tick: Option<Tick>,
    /// Minimum secondary delete key across all entries, if non-empty.
    pub min_dkey: Option<u64>,
    /// Maximum secondary delete key across all entries, if non-empty.
    pub max_dkey: Option<u64>,
}

/// An in-memory write buffer ordered by internal key.
pub struct Memtable {
    list: SkipList,
    tombstones: usize,
    oldest_tombstone_tick: Option<Tick>,
    min_dkey: Option<u64>,
    max_dkey: Option<u64>,
    /// Smallest and largest seqno buffered, for WAL truncation decisions.
    min_seqno: Option<SeqNo>,
    max_seqno: Option<SeqNo>,
    user_bytes: u64,
}

impl Memtable {
    /// An empty memtable.
    pub fn new() -> Memtable {
        Memtable {
            list: SkipList::new(),
            tombstones: 0,
            oldest_tombstone_tick: None,
            min_dkey: None,
            max_dkey: None,
            min_seqno: None,
            max_seqno: None,
            user_bytes: 0,
        }
    }

    /// Insert a put or point tombstone.
    ///
    /// For tombstones, `entry.dkey` must be the tick the delete was
    /// issued at (the engine guarantees this); it seeds FADE's aging.
    pub fn insert(&mut self, entry: Entry) {
        debug_assert!(
            entry.kind != ValueKind::RangeTombstone,
            "secondary range tombstones are tracked in the version, not the memtable"
        );
        if entry.is_tombstone() {
            self.tombstones += 1;
            self.oldest_tombstone_tick = Some(match self.oldest_tombstone_tick {
                Some(t) => t.min(entry.dkey),
                None => entry.dkey,
            });
        }
        self.min_dkey = Some(self.min_dkey.map_or(entry.dkey, |d| d.min(entry.dkey)));
        self.max_dkey = Some(self.max_dkey.map_or(entry.dkey, |d| d.max(entry.dkey)));
        self.min_seqno = Some(self.min_seqno.map_or(entry.seqno, |s| s.min(entry.seqno)));
        self.max_seqno = Some(self.max_seqno.map_or(entry.seqno, |s| s.max(entry.seqno)));
        self.user_bytes += (entry.key.len() + entry.value.len()) as u64;
        self.list.insert(entry);
    }

    /// Point lookup at snapshot `snapshot` (visible seqnos are `<= snapshot`).
    pub fn get(&self, user_key: &[u8], snapshot: SeqNo) -> LookupResult {
        let seek_key = InternalKey::for_seek(user_key, snapshot);
        let mut it = self.list.iter();
        it.seek(seek_key.encoded());
        if !it.valid() {
            return LookupResult::NotFound;
        }
        let entry = it.entry();
        if entry.key != user_key {
            return LookupResult::NotFound;
        }
        debug_assert!(entry.seqno <= snapshot);
        match entry.kind {
            ValueKind::Put => LookupResult::Found(entry.value.clone()),
            ValueKind::Tombstone => LookupResult::Deleted,
            ValueKind::RangeTombstone => LookupResult::NotFound,
        }
    }

    /// All versions of `user_key` visible at `snapshot`, newest first.
    ///
    /// The engine gathers full chains from every source and picks the
    /// globally newest (newest-version-decides semantics); a chain from
    /// one source alone cannot decide, since a newer version may live in
    /// another source.
    pub fn versions(&self, user_key: &[u8], snapshot: SeqNo) -> Vec<Entry> {
        let seek_key = InternalKey::for_seek(user_key, snapshot);
        let mut it = self.list.iter();
        it.seek(seek_key.encoded());
        let mut out = Vec::new();
        while it.valid() {
            let entry = it.entry();
            if entry.key != user_key {
                break;
            }
            debug_assert!(entry.seqno <= snapshot);
            out.push(entry.clone());
            it.next();
        }
        out
    }

    /// A cursor over the memtable in internal-key order.
    pub fn iter(&self) -> SkipIter<'_> {
        self.list.iter()
    }

    /// Entries in internal-key order (used by flush).
    pub fn entries(&self) -> impl Iterator<Item = &Entry> + '_ {
        self.list.entries()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Approximate heap footprint in bytes; the engine flushes when this
    /// exceeds the configured write-buffer size.
    pub fn approximate_bytes(&self) -> usize {
        self.list.approximate_bytes()
    }

    /// Total user payload bytes (key+value) accepted, for
    /// write-amplification denominators.
    pub fn user_bytes(&self) -> u64 {
        self.user_bytes
    }

    /// Smallest seqno buffered.
    pub fn min_seqno(&self) -> Option<SeqNo> {
        self.min_seqno
    }

    /// Largest seqno buffered.
    pub fn max_seqno(&self) -> Option<SeqNo> {
        self.max_seqno
    }

    /// The incremental statistics.
    pub fn stats(&self) -> MemtableStats {
        MemtableStats {
            entries: self.list.len(),
            tombstones: self.tombstones,
            oldest_tombstone_tick: self.oldest_tombstone_tick,
            min_dkey: self.min_dkey,
            max_dkey: self.max_dkey,
        }
    }
}

impl Default for Memtable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(m: &mut Memtable, k: &str, v: &str, seq: SeqNo, dkey: u64) {
        m.insert(Entry::put(
            k.as_bytes().to_vec(),
            v.as_bytes().to_vec(),
            seq,
            dkey,
        ));
    }

    fn del(m: &mut Memtable, k: &str, seq: SeqNo, tick: Tick) {
        m.insert(Entry::tombstone(k.as_bytes().to_vec(), seq, tick));
    }

    #[test]
    fn get_returns_latest_visible_version() {
        let mut m = Memtable::new();
        put(&mut m, "k", "v1", 1, 0);
        put(&mut m, "k", "v2", 5, 0);
        assert_eq!(
            m.get(b"k", 10),
            LookupResult::Found(Bytes::from_static(b"v2"))
        );
        assert_eq!(
            m.get(b"k", 4),
            LookupResult::Found(Bytes::from_static(b"v1"))
        );
        assert_eq!(
            m.get(b"k", 5),
            LookupResult::Found(Bytes::from_static(b"v2"))
        );
    }

    #[test]
    fn get_sees_tombstone_as_deleted() {
        let mut m = Memtable::new();
        put(&mut m, "k", "v1", 1, 0);
        del(&mut m, "k", 2, 100);
        assert_eq!(m.get(b"k", 10), LookupResult::Deleted);
        // The old version is still visible to an older snapshot.
        assert_eq!(
            m.get(b"k", 1),
            LookupResult::Found(Bytes::from_static(b"v1"))
        );
    }

    #[test]
    fn get_missing_key() {
        let mut m = Memtable::new();
        put(&mut m, "a", "v", 1, 0);
        put(&mut m, "c", "v", 2, 0);
        assert_eq!(m.get(b"b", 10), LookupResult::NotFound);
        assert_eq!(m.get(b"", 10), LookupResult::NotFound);
        assert_eq!(m.get(b"zzz", 10), LookupResult::NotFound);
    }

    #[test]
    fn snapshot_older_than_all_writes_sees_nothing() {
        let mut m = Memtable::new();
        put(&mut m, "k", "v", 5, 0);
        assert_eq!(m.get(b"k", 4), LookupResult::NotFound);
    }

    #[test]
    fn versions_returns_full_visible_chain_newest_first() {
        let mut m = Memtable::new();
        put(&mut m, "k", "v1", 1, 10);
        put(&mut m, "k", "v2", 3, 20);
        del(&mut m, "k", 5, 30);
        put(&mut m, "j", "x", 2, 0);
        let vs = m.versions(b"k", 10);
        let seqs: Vec<SeqNo> = vs.iter().map(|e| e.seqno).collect();
        assert_eq!(seqs, vec![5, 3, 1]);
        assert!(vs[0].is_tombstone());
        // Snapshot cuts the chain.
        let vs = m.versions(b"k", 3);
        assert_eq!(vs.len(), 2);
        assert_eq!(vs[0].seqno, 3);
        // Missing key.
        assert!(m.versions(b"zz", 10).is_empty());
    }

    #[test]
    fn tombstone_statistics() {
        let mut m = Memtable::new();
        assert_eq!(m.stats().tombstones, 0);
        assert_eq!(m.stats().oldest_tombstone_tick, None);
        put(&mut m, "a", "v", 1, 10);
        del(&mut m, "b", 2, 300);
        del(&mut m, "c", 3, 200);
        let s = m.stats();
        assert_eq!(s.entries, 3);
        assert_eq!(s.tombstones, 2);
        assert_eq!(s.oldest_tombstone_tick, Some(200));
    }

    #[test]
    fn delete_key_fences() {
        let mut m = Memtable::new();
        put(&mut m, "a", "v", 1, 50);
        put(&mut m, "b", "v", 2, 10);
        put(&mut m, "c", "v", 3, 99);
        let s = m.stats();
        assert_eq!(s.min_dkey, Some(10));
        assert_eq!(s.max_dkey, Some(99));
    }

    #[test]
    fn seqno_range_tracked() {
        let mut m = Memtable::new();
        assert_eq!(m.min_seqno(), None);
        put(&mut m, "a", "v", 7, 0);
        put(&mut m, "b", "v", 3, 0);
        put(&mut m, "c", "v", 9, 0);
        assert_eq!(m.min_seqno(), Some(3));
        assert_eq!(m.max_seqno(), Some(9));
    }

    #[test]
    fn user_bytes_counts_keys_and_values_only() {
        let mut m = Memtable::new();
        put(&mut m, "ab", "xyz", 1, 0); // 2 + 3
        del(&mut m, "cd", 2, 0); // 2 + 0
        assert_eq!(m.user_bytes(), 7);
    }

    #[test]
    fn entries_iterate_in_internal_key_order() {
        let mut m = Memtable::new();
        put(&mut m, "b", "v1", 1, 0);
        put(&mut m, "a", "v2", 2, 0);
        del(&mut m, "a", 3, 0);
        let got: Vec<(Vec<u8>, SeqNo)> = m.entries().map(|e| (e.key.to_vec(), e.seqno)).collect();
        assert_eq!(
            got,
            vec![(b"a".to_vec(), 3), (b"a".to_vec(), 2), (b"b".to_vec(), 1)]
        );
    }
}
