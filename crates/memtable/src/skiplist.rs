//! An arena-backed skiplist ordered by internal key.
//!
//! This is the in-memory sorted structure behind the memtable. Nodes
//! live in a `Vec` arena and link by index, which keeps the structure in
//! safe Rust, cache-friendly, and trivially droppable in one free.
//!
//! Concurrency model: single writer, readers excluded by the caller
//! (the engine wraps the active memtable in a `RwLock`; immutable
//! memtables are read freely without locking since they no longer
//! change). Heights are drawn from a deterministic xorshift generator so
//! test runs are reproducible.
//!
//! Ordering invariant: nodes are strictly increasing in
//! [`acheron_types::key::compare_internal`] order. Since sequence numbers
//! are unique per mutation, no two nodes ever compare equal.

use std::cmp::Ordering;

use acheron_types::key::compare_internal;
use acheron_types::Entry;

const MAX_HEIGHT: usize = 12;
/// Probability 1/4 of growing a tower by one level, as in LevelDB.
const BRANCHING: u64 = 4;

/// Index of the sentinel head node.
const HEAD: u32 = 0;
/// Null link.
const NIL: u32 = u32::MAX;

struct Node {
    /// `None` only for the head sentinel.
    entry: Option<Entry>,
    /// Encoded internal key, cached to avoid re-encoding on every compare.
    ikey: Vec<u8>,
    /// `tower[h]` is the next node at height `h`.
    tower: Vec<u32>,
}

/// A skiplist of [`Entry`] values ordered by internal key.
pub struct SkipList {
    arena: Vec<Node>,
    height: usize,
    len: usize,
    approx_bytes: usize,
    rng_state: u64,
}

impl SkipList {
    /// An empty list.
    pub fn new() -> SkipList {
        SkipList::with_seed(0x9e37_79b9_7f4a_7c15)
    }

    /// An empty list with an explicit height-RNG seed (tests use this to
    /// exercise degenerate tower shapes).
    pub fn with_seed(seed: u64) -> SkipList {
        let head = Node {
            entry: None,
            ikey: Vec::new(),
            tower: vec![NIL; MAX_HEIGHT],
        };
        SkipList {
            arena: vec![head],
            height: 1,
            len: 0,
            approx_bytes: 0,
            rng_state: seed | 1,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries have been inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Approximate memory footprint of stored entries in bytes.
    pub fn approximate_bytes(&self) -> usize {
        self.approx_bytes
    }

    fn random_height(&mut self) -> usize {
        // xorshift64*
        let mut h = 1;
        while h < MAX_HEIGHT {
            self.rng_state ^= self.rng_state << 13;
            self.rng_state ^= self.rng_state >> 7;
            self.rng_state ^= self.rng_state << 17;
            if !self.rng_state.is_multiple_of(BRANCHING) {
                break;
            }
            h += 1;
        }
        h
    }

    #[inline]
    fn node(&self, idx: u32) -> &Node {
        &self.arena[idx as usize]
    }

    /// Compare the node at `idx` against `key` (encoded internal key).
    /// The head sentinel compares less than everything.
    #[inline]
    fn cmp_node(&self, idx: u32, key: &[u8]) -> Ordering {
        if idx == HEAD {
            return Ordering::Less;
        }
        compare_internal(&self.node(idx).ikey, key)
    }

    /// Find, for every level, the rightmost node strictly less than `key`.
    #[allow(clippy::needless_range_loop)] // descending level walk carries state between levels
    fn find_predecessors(&self, key: &[u8]) -> [u32; MAX_HEIGHT] {
        let mut preds = [HEAD; MAX_HEIGHT];
        let mut current = HEAD;
        for level in (0..self.height).rev() {
            loop {
                let next = self.node(current).tower[level];
                if next != NIL && self.cmp_node(next, key) == Ordering::Less {
                    current = next;
                } else {
                    break;
                }
            }
            preds[level] = current;
        }
        preds
    }

    /// Insert an entry.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if an entry with an identical internal key
    /// is already present (sequence numbers must be unique).
    pub fn insert(&mut self, entry: Entry) {
        let ikey = entry.internal_key().encoded().to_vec();
        let preds = self.find_predecessors(&ikey);
        debug_assert!(
            {
                let next = self.node(preds[0]).tower[0];
                next == NIL || self.cmp_node(next, &ikey) != Ordering::Equal
            },
            "duplicate internal key inserted into skiplist"
        );

        let height = self.random_height();
        if height > self.height {
            self.height = height;
        }

        self.approx_bytes += entry.encoded_size() + ikey.len();
        let new_idx = self.arena.len() as u32;
        let mut tower = vec![NIL; height];
        for (level, link) in tower.iter_mut().enumerate() {
            *link = self.node(preds[level]).tower[level];
        }
        self.arena.push(Node {
            entry: Some(entry),
            ikey,
            tower,
        });
        for (level, &pred) in preds.iter().enumerate().take(height) {
            self.arena[pred as usize].tower[level] = new_idx;
        }
        self.len += 1;
    }

    /// The first node whose internal key is `>= key`, as an arena index.
    fn lower_bound(&self, key: &[u8]) -> u32 {
        let preds = self.find_predecessors(key);
        self.node(preds[0]).tower[0]
    }

    /// An iterator positioned before the first entry.
    pub fn iter(&self) -> SkipIter<'_> {
        SkipIter {
            list: self,
            current: NIL,
            initialized: false,
        }
    }

    /// Entries in order (convenience for flush paths and tests).
    pub fn entries(&self) -> impl Iterator<Item = &Entry> + '_ {
        let mut idx = self.node(HEAD).tower[0];
        std::iter::from_fn(move || {
            if idx == NIL {
                return None;
            }
            let entry = self.node(idx).entry.as_ref();
            idx = self.node(idx).tower[0];
            entry
        })
    }
}

impl Default for SkipList {
    fn default() -> Self {
        Self::new()
    }
}

/// A cursor over a [`SkipList`] in internal-key order.
pub struct SkipIter<'a> {
    list: &'a SkipList,
    current: u32,
    initialized: bool,
}

impl<'a> SkipIter<'a> {
    /// True if positioned at an entry.
    pub fn valid(&self) -> bool {
        self.initialized && self.current != NIL
    }

    /// Position at the first entry.
    pub fn seek_to_first(&mut self) {
        self.current = self.list.node(HEAD).tower[0];
        self.initialized = true;
    }

    /// Position at the first entry with internal key `>= key`.
    pub fn seek(&mut self, key: &[u8]) {
        self.current = self.list.lower_bound(key);
        self.initialized = true;
    }

    /// Advance to the next entry. Must be valid.
    pub fn next(&mut self) {
        debug_assert!(self.valid());
        self.current = self.list.node(self.current).tower[0];
    }

    /// The entry at the cursor. Must be valid.
    pub fn entry(&self) -> &'a Entry {
        debug_assert!(self.valid());
        self.list
            .node(self.current)
            .entry
            .as_ref()
            .expect("non-head node has entry")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acheron_types::{InternalKey, ValueKind};

    fn put(k: &str, seq: u64) -> Entry {
        Entry::put(
            k.as_bytes().to_vec(),
            format!("v{seq}").into_bytes(),
            seq,
            0,
        )
    }

    #[test]
    fn empty_list() {
        let l = SkipList::new();
        assert!(l.is_empty());
        assert_eq!(l.len(), 0);
        let mut it = l.iter();
        it.seek_to_first();
        assert!(!it.valid());
    }

    #[test]
    fn insert_and_scan_in_order() {
        let mut l = SkipList::new();
        for (i, k) in ["m", "a", "z", "c", "q"].iter().enumerate() {
            l.insert(put(k, i as u64 + 1));
        }
        let keys: Vec<&[u8]> = l.entries().map(|e| &e.key[..]).collect();
        assert_eq!(keys, vec![&b"a"[..], b"c", b"m", b"q", b"z"]);
        assert_eq!(l.len(), 5);
    }

    #[test]
    fn same_user_key_newest_first() {
        let mut l = SkipList::new();
        l.insert(put("k", 1));
        l.insert(put("k", 3));
        l.insert(Entry::tombstone(&b"k"[..], 2, 0));
        let seqs: Vec<u64> = l.entries().map(|e| e.seqno).collect();
        assert_eq!(seqs, vec![3, 2, 1]);
    }

    #[test]
    fn seek_finds_lower_bound() {
        let mut l = SkipList::new();
        for (i, k) in ["b", "d", "f"].iter().enumerate() {
            l.insert(put(k, i as u64 + 1));
        }
        let mut it = l.iter();

        it.seek(InternalKey::for_seek(b"c", u64::MAX >> 8).encoded());
        assert!(it.valid());
        assert_eq!(&it.entry().key[..], b"d");

        it.seek(InternalKey::for_seek(b"d", u64::MAX >> 8).encoded());
        assert!(it.valid());
        assert_eq!(&it.entry().key[..], b"d");

        it.seek(InternalKey::for_seek(b"g", u64::MAX >> 8).encoded());
        assert!(!it.valid());
    }

    #[test]
    fn seek_respects_snapshot_seqno() {
        let mut l = SkipList::new();
        l.insert(put("k", 5));
        l.insert(put("k", 10));
        // Seeking at snapshot 7 must land on seqno 5, skipping seqno 10.
        let mut it = l.iter();
        it.seek(InternalKey::for_seek(b"k", 7).encoded());
        assert!(it.valid());
        assert_eq!(it.entry().seqno, 5);
        // Seeking at snapshot 10 lands on seqno 10.
        it.seek(InternalKey::for_seek(b"k", 10).encoded());
        assert_eq!(it.entry().seqno, 10);
    }

    #[test]
    fn iteration_via_cursor_matches_entries() {
        let mut l = SkipList::new();
        for i in 0..100u64 {
            l.insert(put(&format!("key{i:03}"), i + 1));
        }
        let mut it = l.iter();
        it.seek_to_first();
        let mut count = 0;
        let mut last: Option<InternalKey> = None;
        while it.valid() {
            let ik = it.entry().internal_key();
            if let Some(prev) = &last {
                assert!(prev < &ik, "order violated");
            }
            last = Some(ik);
            count += 1;
            it.next();
        }
        assert_eq!(count, 100);
    }

    #[test]
    fn large_random_insert_stays_sorted() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(42);
        let mut l = SkipList::new();
        let mut n = 0u64;
        for _ in 0..5000 {
            n += 1;
            let k: u32 = rng.gen_range(0..100_000);
            l.insert(put(&format!("{k:08}"), n));
        }
        let mut prev: Option<InternalKey> = None;
        for e in l.entries() {
            let ik = e.internal_key();
            if let Some(p) = &prev {
                assert!(p < &ik);
            }
            prev = Some(ik);
        }
        assert_eq!(l.len(), 5000);
    }

    #[test]
    fn approximate_bytes_grows_with_content() {
        let mut l = SkipList::new();
        assert_eq!(l.approximate_bytes(), 0);
        l.insert(put("abc", 1));
        let after_one = l.approximate_bytes();
        assert!(after_one > 0);
        l.insert(put("defghij", 2));
        assert!(l.approximate_bytes() > after_one);
    }

    #[test]
    fn tombstones_coexist_with_puts() {
        let mut l = SkipList::new();
        l.insert(put("a", 1));
        l.insert(Entry::tombstone(&b"a"[..], 2, 99));
        let entries: Vec<&Entry> = l.entries().collect();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].kind, ValueKind::Tombstone);
        assert_eq!(entries[0].dkey, 99);
        assert_eq!(entries[1].kind, ValueKind::Put);
    }

    #[test]
    fn different_seeds_same_contents() {
        let mut a = SkipList::with_seed(1);
        let mut b = SkipList::with_seed(999_999);
        for i in 0..200u64 {
            let e = put(&format!("{:04}", (i * 7919) % 1000), i + 1);
            a.insert(e.clone());
            b.insert(e);
        }
        let ka: Vec<_> = a.entries().map(|e| e.internal_key()).collect();
        let kb: Vec<_> = b.entries().map(|e| e.internal_key()).collect();
        assert_eq!(ka, kb);
    }
}
