//! An arena-backed skiplist ordered by internal key.
//!
//! This is the in-memory sorted structure behind the memtable. Nodes
//! live in a chunked arena of `OnceLock` slots and link by index through
//! `AtomicU32` towers, which keeps the structure in safe Rust, stable in
//! memory (chunks never move once allocated), and trivially droppable.
//!
//! Concurrency model: **single writer, lock-free concurrent readers**.
//! The engine serializes writers externally (the commit leader is the
//! only inserter of the active memtable); readers traverse concurrently
//! with no synchronization beyond the atomics here. Publication follows
//! the classic skiplist protocol: a node is fully constructed — entry,
//! cached key, and tower pre-linked to its successors — and published
//! into its `OnceLock` slot *before* any predecessor's link is
//! `Release`-stored to point at it, so an `Acquire` traversal can never
//! observe a half-built node. Readers that race an insert either see the
//! new node (fully built) or don't see it yet; the list order is always
//! consistent.
//!
//! Heights are drawn from a deterministic xorshift generator so test
//! runs are reproducible.
//!
//! Ordering invariant: nodes are strictly increasing in
//! [`acheron_types::key::compare_internal`] order. Since sequence numbers
//! are unique per mutation, no two nodes ever compare equal.

use std::cmp::Ordering as CmpOrdering;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

use acheron_types::key::compare_internal;
use acheron_types::Entry;

const MAX_HEIGHT: usize = 12;
/// Probability 1/4 of growing a tower by one level, as in LevelDB.
const BRANCHING: u64 = 4;

/// Index of the sentinel head node.
const HEAD: u32 = 0;
/// Null link.
const NIL: u32 = u32::MAX;

/// Nodes in the first chunk; chunk `c` holds `BASE << c` nodes, so the
/// arena grows geometrically without ever moving an allocated node.
const BASE_CHUNK: usize = 1 << 10;
const BASE_SHIFT: u32 = 10;
/// 21 chunks cover `BASE * (2^21 - 1)` ≈ 2.1 billion nodes — beyond any
/// realistic memtable and still within `u32` index space.
const NUM_CHUNKS: usize = 21;

struct Node {
    /// `None` only for the head sentinel.
    entry: Option<Entry>,
    /// Encoded internal key, cached to avoid re-encoding on every compare.
    ikey: Vec<u8>,
    /// `tower[h]` is the next node at height `h`.
    tower: Box<[AtomicU32]>,
}

/// A skiplist of [`Entry`] values ordered by internal key.
pub struct SkipList {
    /// Chunked arena: slot `idx` lives in chunk `c`, offset `off` per
    /// [`SkipList::locate`]. Chunks allocate lazily and never move.
    chunks: [OnceLock<Box<[OnceLock<Node>]>>; NUM_CHUNKS],
    /// Current tower height in use.
    height: AtomicUsize,
    /// Nodes allocated, including the head sentinel.
    count: AtomicU32,
    /// Entries inserted (excludes the head).
    len: AtomicUsize,
    approx_bytes: AtomicUsize,
    /// Height RNG; only the (single) writer touches it.
    rng_state: AtomicU64,
}

impl SkipList {
    /// An empty list.
    pub fn new() -> SkipList {
        SkipList::with_seed(0x9e37_79b9_7f4a_7c15)
    }

    /// An empty list with an explicit height-RNG seed (tests use this to
    /// exercise degenerate tower shapes).
    pub fn with_seed(seed: u64) -> SkipList {
        let list = SkipList {
            chunks: std::array::from_fn(|_| OnceLock::new()),
            height: AtomicUsize::new(1),
            count: AtomicU32::new(0),
            len: AtomicUsize::new(0),
            approx_bytes: AtomicUsize::new(0),
            rng_state: AtomicU64::new(seed | 1),
        };
        let head = Node {
            entry: None,
            ikey: Vec::new(),
            tower: (0..MAX_HEIGHT).map(|_| AtomicU32::new(NIL)).collect(),
        };
        let ok = list.chunk(0)[0].set(head).is_ok();
        debug_assert!(ok);
        list.count.store(1, Ordering::Release);
        list
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// True if no entries have been inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate memory footprint of stored entries in bytes.
    pub fn approximate_bytes(&self) -> usize {
        self.approx_bytes.load(Ordering::Relaxed)
    }

    /// Map a global node index to `(chunk, offset)`.
    #[inline]
    fn locate(idx: u32) -> (usize, usize) {
        // Chunk c covers indices [(2^c - 1) * BASE, (2^(c+1) - 1) * BASE).
        let b = (idx as usize >> BASE_SHIFT) + 1;
        let c = (usize::BITS - 1 - b.leading_zeros()) as usize;
        let off = idx as usize - (((1usize << c) - 1) << BASE_SHIFT);
        (c, off)
    }

    /// The slot array for chunk `c`, allocating it on first touch.
    fn chunk(&self, c: usize) -> &[OnceLock<Node>] {
        self.chunks[c].get_or_init(|| (0..(BASE_CHUNK << c)).map(|_| OnceLock::new()).collect())
    }

    fn random_height(&self) -> usize {
        // xorshift64*; single writer, so relaxed load/store round-trips.
        let mut state = self.rng_state.load(Ordering::Relaxed);
        let mut h = 1;
        while h < MAX_HEIGHT {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if !state.is_multiple_of(BRANCHING) {
                break;
            }
            h += 1;
        }
        self.rng_state.store(state, Ordering::Relaxed);
        h
    }

    #[inline]
    fn node(&self, idx: u32) -> &Node {
        let (c, off) = Self::locate(idx);
        self.chunks[c]
            .get()
            .expect("chunk allocated before any index into it is published")[off]
            .get()
            .expect("node published before any link to it")
    }

    /// Compare the node at `idx` against `key` (encoded internal key).
    /// The head sentinel compares less than everything.
    #[inline]
    fn cmp_node(&self, idx: u32, key: &[u8]) -> CmpOrdering {
        if idx == HEAD {
            return CmpOrdering::Less;
        }
        compare_internal(&self.node(idx).ikey, key)
    }

    /// Find, for every level, the rightmost node strictly less than
    /// `key`, plus the level-0 successor *observed during the walk*
    /// (NIL or the first node `>= key`). Lower-bound callers must use
    /// that observed successor rather than re-loading `preds[0]`'s
    /// link: between the walk and a second load, a concurrent insert
    /// can splice in a node that sorts before `key` (a newer version
    /// of the same user key — seqno-descending order), and the re-load
    /// would return it, breaking the `>= key` contract.
    #[allow(clippy::needless_range_loop)] // descending level walk carries state between levels
    fn find_predecessors(&self, key: &[u8]) -> ([u32; MAX_HEIGHT], u32) {
        let mut preds = [HEAD; MAX_HEIGHT];
        let mut current = HEAD;
        let mut succ0 = NIL;
        let height = self.height.load(Ordering::Relaxed).max(1);
        for level in (0..height).rev() {
            loop {
                let next = self.node(current).tower[level].load(Ordering::Acquire);
                if next != NIL && self.cmp_node(next, key) == CmpOrdering::Less {
                    current = next;
                } else {
                    if level == 0 {
                        succ0 = next;
                    }
                    break;
                }
            }
            preds[level] = current;
        }
        (preds, succ0)
    }

    /// Insert an entry.
    ///
    /// Callers must serialize inserts (single-writer contract); readers
    /// may traverse concurrently.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if an entry with an identical internal key
    /// is already present (sequence numbers must be unique).
    pub fn insert(&self, entry: Entry) {
        let ikey = entry.internal_key().encoded().to_vec();
        let (preds, _) = self.find_predecessors(&ikey);
        debug_assert!(
            {
                let next = self.node(preds[0]).tower[0].load(Ordering::Acquire);
                next == NIL || self.cmp_node(next, &ikey) != CmpOrdering::Equal
            },
            "duplicate internal key inserted into skiplist"
        );

        let height = self.random_height();
        if height > self.height.load(Ordering::Relaxed) {
            // Readers seeing the old height just start lower; readers
            // seeing the new height find NIL head links until the node
            // publishes. Either way the walk is correct.
            self.height.store(height, Ordering::Relaxed);
        }

        self.approx_bytes
            .fetch_add(entry.encoded_size() + ikey.len(), Ordering::Relaxed);
        let idx = self.count.load(Ordering::Relaxed);
        assert!(idx != NIL, "skiplist arena exhausted");
        // Pre-link the tower to the successors *before* publishing, so
        // the node is fully wired the instant it becomes reachable.
        let tower: Box<[AtomicU32]> = (0..height)
            .map(|level| {
                AtomicU32::new(self.node(preds[level]).tower[level].load(Ordering::Relaxed))
            })
            .collect();
        let (c, off) = Self::locate(idx);
        let published = self.chunk(c)[off]
            .set(Node {
                entry: Some(entry),
                ikey,
                tower,
            })
            .is_ok();
        assert!(published, "skiplist slot reused: writer not serialized");
        self.count.store(idx + 1, Ordering::Release);
        // Bottom-up link order so a reader that finds the node at a high
        // level can always descend through it.
        for (level, &pred) in preds.iter().enumerate().take(height) {
            self.node(pred).tower[level].store(idx, Ordering::Release);
        }
        self.len.fetch_add(1, Ordering::Release);
    }

    /// The first node whose internal key is `>= key`, as an arena
    /// index. This is the successor observed during the predecessor
    /// walk — never a re-load, which could race a concurrent insert of
    /// a smaller key (see [`SkipList::find_predecessors`]).
    fn lower_bound(&self, key: &[u8]) -> u32 {
        self.find_predecessors(key).1
    }

    /// An iterator positioned before the first entry.
    pub fn iter(&self) -> SkipIter<'_> {
        SkipIter {
            list: self,
            current: NIL,
            initialized: false,
        }
    }

    /// Entries in order (convenience for flush paths and tests).
    pub fn entries(&self) -> impl Iterator<Item = &Entry> + '_ {
        let mut idx = self.node(HEAD).tower[0].load(Ordering::Acquire);
        std::iter::from_fn(move || {
            if idx == NIL {
                return None;
            }
            let node = self.node(idx);
            idx = node.tower[0].load(Ordering::Acquire);
            node.entry.as_ref()
        })
    }
}

impl Default for SkipList {
    fn default() -> Self {
        Self::new()
    }
}

/// A cursor over a [`SkipList`] in internal-key order.
pub struct SkipIter<'a> {
    list: &'a SkipList,
    current: u32,
    initialized: bool,
}

impl<'a> SkipIter<'a> {
    /// True if positioned at an entry.
    pub fn valid(&self) -> bool {
        self.initialized && self.current != NIL
    }

    /// Position at the first entry.
    pub fn seek_to_first(&mut self) {
        self.current = self.list.node(HEAD).tower[0].load(Ordering::Acquire);
        self.initialized = true;
    }

    /// Position at the first entry with internal key `>= key`.
    pub fn seek(&mut self, key: &[u8]) {
        self.current = self.list.lower_bound(key);
        self.initialized = true;
    }

    /// Advance to the next entry. Must be valid.
    pub fn next(&mut self) {
        debug_assert!(self.valid());
        self.current = self.list.node(self.current).tower[0].load(Ordering::Acquire);
    }

    /// The entry at the cursor. Must be valid.
    pub fn entry(&self) -> &'a Entry {
        debug_assert!(self.valid());
        self.list
            .node(self.current)
            .entry
            .as_ref()
            .expect("non-head node has entry")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acheron_types::{InternalKey, ValueKind};

    fn put(k: &str, seq: u64) -> Entry {
        Entry::put(
            k.as_bytes().to_vec(),
            format!("v{seq}").into_bytes(),
            seq,
            0,
        )
    }

    #[test]
    fn empty_list() {
        let l = SkipList::new();
        assert!(l.is_empty());
        assert_eq!(l.len(), 0);
        let mut it = l.iter();
        it.seek_to_first();
        assert!(!it.valid());
    }

    #[test]
    fn insert_and_scan_in_order() {
        let l = SkipList::new();
        for (i, k) in ["m", "a", "z", "c", "q"].iter().enumerate() {
            l.insert(put(k, i as u64 + 1));
        }
        let keys: Vec<&[u8]> = l.entries().map(|e| &e.key[..]).collect();
        assert_eq!(keys, vec![&b"a"[..], b"c", b"m", b"q", b"z"]);
        assert_eq!(l.len(), 5);
    }

    #[test]
    fn same_user_key_newest_first() {
        let l = SkipList::new();
        l.insert(put("k", 1));
        l.insert(put("k", 3));
        l.insert(Entry::tombstone(&b"k"[..], 2, 0));
        let seqs: Vec<u64> = l.entries().map(|e| e.seqno).collect();
        assert_eq!(seqs, vec![3, 2, 1]);
    }

    #[test]
    fn seek_finds_lower_bound() {
        let l = SkipList::new();
        for (i, k) in ["b", "d", "f"].iter().enumerate() {
            l.insert(put(k, i as u64 + 1));
        }
        let mut it = l.iter();

        it.seek(InternalKey::for_seek(b"c", u64::MAX >> 8).encoded());
        assert!(it.valid());
        assert_eq!(&it.entry().key[..], b"d");

        it.seek(InternalKey::for_seek(b"d", u64::MAX >> 8).encoded());
        assert!(it.valid());
        assert_eq!(&it.entry().key[..], b"d");

        it.seek(InternalKey::for_seek(b"g", u64::MAX >> 8).encoded());
        assert!(!it.valid());
    }

    #[test]
    fn seek_respects_snapshot_seqno() {
        let l = SkipList::new();
        l.insert(put("k", 5));
        l.insert(put("k", 10));
        // Seeking at snapshot 7 must land on seqno 5, skipping seqno 10.
        let mut it = l.iter();
        it.seek(InternalKey::for_seek(b"k", 7).encoded());
        assert!(it.valid());
        assert_eq!(it.entry().seqno, 5);
        // Seeking at snapshot 10 lands on seqno 10.
        it.seek(InternalKey::for_seek(b"k", 10).encoded());
        assert_eq!(it.entry().seqno, 10);
    }

    #[test]
    fn iteration_via_cursor_matches_entries() {
        let l = SkipList::new();
        for i in 0..100u64 {
            l.insert(put(&format!("key{i:03}"), i + 1));
        }
        let mut it = l.iter();
        it.seek_to_first();
        let mut count = 0;
        let mut last: Option<InternalKey> = None;
        while it.valid() {
            let ik = it.entry().internal_key();
            if let Some(prev) = &last {
                assert!(prev < &ik, "order violated");
            }
            last = Some(ik);
            count += 1;
            it.next();
        }
        assert_eq!(count, 100);
    }

    #[test]
    fn large_random_insert_stays_sorted() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(42);
        let l = SkipList::new();
        let mut n = 0u64;
        for _ in 0..5000 {
            n += 1;
            let k: u32 = rng.gen_range(0..100_000);
            l.insert(put(&format!("{k:08}"), n));
        }
        let mut prev: Option<InternalKey> = None;
        for e in l.entries() {
            let ik = e.internal_key();
            if let Some(p) = &prev {
                assert!(p < &ik);
            }
            prev = Some(ik);
        }
        assert_eq!(l.len(), 5000);
    }

    #[test]
    fn crosses_chunk_boundaries() {
        // More entries than the first chunk holds: indices span chunks
        // and every node must remain reachable and ordered.
        let l = SkipList::new();
        let n = (BASE_CHUNK * 3 + 17) as u64;
        for i in 0..n {
            l.insert(put(&format!("{i:08}"), i + 1));
        }
        assert_eq!(l.len(), n as usize);
        let mut prev: Option<InternalKey> = None;
        let mut count = 0usize;
        for e in l.entries() {
            let ik = e.internal_key();
            if let Some(p) = &prev {
                assert!(p < &ik);
            }
            prev = Some(ik);
            count += 1;
        }
        assert_eq!(count, n as usize);
    }

    #[test]
    fn locate_maps_indices_into_chunks() {
        assert_eq!(SkipList::locate(0), (0, 0));
        assert_eq!(
            SkipList::locate((BASE_CHUNK - 1) as u32),
            (0, BASE_CHUNK - 1)
        );
        assert_eq!(SkipList::locate(BASE_CHUNK as u32), (1, 0));
        assert_eq!(
            SkipList::locate((3 * BASE_CHUNK - 1) as u32),
            (1, 2 * BASE_CHUNK - 1)
        );
        assert_eq!(SkipList::locate((3 * BASE_CHUNK) as u32), (2, 0));
        assert_eq!(SkipList::locate((7 * BASE_CHUNK) as u32), (3, 0));
    }

    #[test]
    fn concurrent_readers_during_inserts() {
        // One writer inserting while readers continuously traverse: the
        // readers must always observe a sorted prefix of the inserts.
        use std::sync::atomic::{AtomicBool, Ordering};
        let l = SkipList::new();
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    while !stop.load(Ordering::Relaxed) {
                        let mut prev: Option<InternalKey> = None;
                        let mut seen = 0usize;
                        for e in l.entries() {
                            let ik = e.internal_key();
                            if let Some(p) = &prev {
                                assert!(p < &ik, "reader saw order violation");
                            }
                            prev = Some(ik);
                            seen += 1;
                        }
                        // len() was incremented for at least the entries
                        // linked before this traversal started.
                        let _ = seen;
                    }
                });
            }
            for i in 0..20_000u64 {
                l.insert(put(&format!("{:08}", (i * 7919) % 100_000), i + 1));
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(l.len(), 20_000);
    }

    #[test]
    fn concurrent_seeks_never_see_past_their_snapshot() {
        // Regression: `lower_bound` used to re-load `preds[0]`'s level-0
        // link after the predecessor walk. A writer stacking newer
        // versions of the same key could splice one in between the walk
        // and the re-load, handing the seek a node *before* its target —
        // an entry newer than the reader's snapshot.
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
        let l = SkipList::new();
        l.insert(put("hot", 1));
        let published = AtomicU64::new(1);
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    while !stop.load(Ordering::Relaxed) {
                        let snapshot = published.load(Ordering::Acquire);
                        let mut it = l.iter();
                        it.seek(InternalKey::for_seek(b"hot", snapshot).encoded());
                        assert!(it.valid());
                        let e = it.entry();
                        assert_eq!(&e.key[..], b"hot");
                        assert!(
                            e.seqno <= snapshot,
                            "seek at snapshot {snapshot} returned seqno {}",
                            e.seqno
                        );
                    }
                });
            }
            for seq in 2..40_000u64 {
                l.insert(put("hot", seq));
                published.store(seq, Ordering::Release);
            }
            stop.store(true, Ordering::Relaxed);
        });
    }

    #[test]
    fn approximate_bytes_grows_with_content() {
        let l = SkipList::new();
        assert_eq!(l.approximate_bytes(), 0);
        l.insert(put("abc", 1));
        let after_one = l.approximate_bytes();
        assert!(after_one > 0);
        l.insert(put("defghij", 2));
        assert!(l.approximate_bytes() > after_one);
    }

    #[test]
    fn tombstones_coexist_with_puts() {
        let l = SkipList::new();
        l.insert(put("a", 1));
        l.insert(Entry::tombstone(&b"a"[..], 2, 99));
        let entries: Vec<&Entry> = l.entries().collect();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].kind, ValueKind::Tombstone);
        assert_eq!(entries[0].dkey, 99);
        assert_eq!(entries[1].kind, ValueKind::Put);
    }

    #[test]
    fn different_seeds_same_contents() {
        let a = SkipList::with_seed(1);
        let b = SkipList::with_seed(999_999);
        for i in 0..200u64 {
            let e = put(&format!("{:04}", (i * 7919) % 1000), i + 1);
            a.insert(e.clone());
            b.insert(e);
        }
        let ka: Vec<_> = a.entries().map(|e| e.internal_key()).collect();
        let kb: Vec<_> = b.entries().map(|e| e.internal_key()).collect();
        assert_eq!(ka, kb);
    }
}
