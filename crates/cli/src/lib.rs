//! Command interpreter behind the `acheron` demo binary.
//!
//! The Acheron paper is a SIGMOD *demonstration*: its interface lets an
//! operator issue writes and deletes, turn the FADE/KiWi knobs, advance
//! time, and watch tombstones age and get purged. This module is that
//! demo as a deterministic, scriptable interpreter (the binary wraps it
//! around stdin); being a plain function of `&str -> String` it is fully
//! unit-testable.

use std::sync::Arc;

use acheron::{CompactionLayout, Db, DbOptions};
use acheron_server::Client;
use acheron_vfs::MemFs;
use acheron_workload::{run_ops, KeyDistribution, OpMix, WorkloadGen, WorkloadSpec};

/// Interpreter state: one open database plus its configuration.
pub struct Session {
    db: Db,
    opts: DbOptions,
    /// When on, every `put`/`get`/`del` runs force-traced and prints
    /// its span breakdown after the ordinary output.
    tracing: bool,
}

/// What the interpreter did with a line.
#[derive(Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Output to print (may be multi-line or empty).
    Text(String),
    /// The user asked to leave.
    Quit,
}

fn help_text() -> String {
    "\
commands:
  put <key> <value> [dkey]     insert/update (dkey = secondary delete key)
  get <key>                    point lookup
  del <key>                    point delete (inserts a tombstone)
  rdel <lo> <hi>               secondary range delete over delete keys
  delrange <start> <end>       sort-key range delete (inclusive bounds)
  scan <lo> <hi>               range scan over sort keys (inclusive)
  workload <n> <put%> <del%> <get%> <scan%>   run n generated ops
  tick <n>                     advance the logical clock n ticks
  maintain                     run pending compactions (FADE enforcement)
  compact                      full manual compaction
  flush                        flush the memtable
  tree                         show level occupancy
  tombstones                   show tombstone population and ages
  stats                        show engine counters
  metrics                      Prometheus-style metrics exposition
  events                       recent engine events (flight recorder)
  trace on|off                 trace every data op and print its spans
  traces                       recently sampled per-op traces
  audit                        delete-lifecycle audit (D_th compliance)
  reopen [fade <D_th>] [tile <h>] [tiering|leveling|lazy]
                               restart with fresh options (data is kept)
  help                         this text
  quit                         exit"
        .to_string()
}

impl Session {
    /// A fresh in-memory session with the given options.
    pub fn new(opts: DbOptions) -> Session {
        let db = Db::open(Arc::new(MemFs::new()), "demo", opts.clone()).expect("open demo db");
        Session {
            db,
            opts,
            tracing: false,
        }
    }

    /// A session with demo-friendly defaults (small buffers, FADE on).
    pub fn demo() -> Session {
        Session::new(DbOptions::small().with_fade(50_000))
    }

    /// Access the underlying database (tests).
    pub fn db(&self) -> &Db {
        &self.db
    }

    /// Execute one command line.
    pub fn execute(&mut self, line: &str) -> Outcome {
        let mut parts = line.split_whitespace();
        let Some(cmd) = parts.next() else {
            return Outcome::Text(String::new());
        };
        let args: Vec<&str> = parts.collect();
        let result = match cmd {
            "help" => Ok(help_text()),
            "quit" | "exit" => return Outcome::Quit,
            "put" => self.cmd_put(&args),
            "get" => self.cmd_get(&args),
            "del" => self.cmd_del(&args),
            "rdel" => self.cmd_rdel(&args),
            "delrange" => self.cmd_delrange(&args),
            "scan" => self.cmd_scan(&args),
            "workload" => self.cmd_workload(&args),
            "tick" => self.cmd_tick(&args),
            "maintain" => self
                .db
                .maintain()
                .map(|_| "ok".to_string())
                .map_err(|e| e.to_string()),
            "compact" => self
                .db
                .compact_all()
                .map(|_| "ok".to_string())
                .map_err(|e| e.to_string()),
            "flush" => self
                .db
                .flush()
                .map(|_| "ok".to_string())
                .map_err(|e| e.to_string()),
            "tree" => Ok(self.render_tree()),
            "tombstones" => Ok(self.render_tombstones()),
            "stats" => Ok(self.render_stats()),
            "metrics" => Ok(self.render_metrics()),
            "events" => Ok(self.render_events()),
            "trace" => self.cmd_trace(&args),
            "traces" => Ok(acheron::render_traces(&self.db.recent_traces())
                .trim_end()
                .to_string()),
            "audit" => Ok(self.db.delete_audit().render().trim_end().to_string()),
            "reopen" => self.cmd_reopen(&args),
            other => Err(format!("unknown command {other:?}; try `help`")),
        };
        Outcome::Text(match result {
            Ok(s) => s,
            Err(e) => format!("error: {e}"),
        })
    }

    fn cmd_trace(&mut self, args: &[&str]) -> Result<String, String> {
        match args {
            ["on"] => {
                self.tracing = true;
                Ok("tracing on: data ops print their span breakdown".into())
            }
            ["off"] => {
                self.tracing = false;
                Ok("tracing off".into())
            }
            _ => Err("usage: trace on|off".into()),
        }
    }

    fn cmd_put(&mut self, args: &[&str]) -> Result<String, String> {
        match args {
            [key, value] if self.tracing => {
                let trace = self
                    .db
                    .put_traced(key.as_bytes(), value.as_bytes(), None)
                    .map_err(|e| e.to_string())?;
                Ok(format!("ok\n{}", trace.render().trim_end()))
            }
            [key, value] => {
                self.db
                    .put(key.as_bytes(), value.as_bytes())
                    .map_err(|e| e.to_string())?;
                Ok("ok".into())
            }
            [key, value, dkey] => {
                let d: u64 = dkey
                    .parse()
                    .map_err(|_| "dkey must be a number".to_string())?;
                self.db
                    .put_with_dkey(key.as_bytes(), value.as_bytes(), d)
                    .map_err(|e| e.to_string())?;
                Ok("ok".into())
            }
            _ => Err("usage: put <key> <value> [dkey]".into()),
        }
    }

    fn cmd_get(&mut self, args: &[&str]) -> Result<String, String> {
        let [key] = args else {
            return Err("usage: get <key>".into());
        };
        if self.tracing {
            let (value, trace) = self
                .db
                .get_traced(key.as_bytes(), None)
                .map_err(|e| e.to_string())?;
            let shown = match value {
                Some(v) => String::from_utf8_lossy(&v).into_owned(),
                None => "(not found)".into(),
            };
            return Ok(format!("{shown}\n{}", trace.render().trim_end()));
        }
        match self.db.get(key.as_bytes()).map_err(|e| e.to_string())? {
            Some(v) => Ok(String::from_utf8_lossy(&v).into_owned()),
            None => Ok("(not found)".into()),
        }
    }

    fn cmd_del(&mut self, args: &[&str]) -> Result<String, String> {
        let [key] = args else {
            return Err("usage: del <key>".into());
        };
        if self.tracing {
            let trace = self
                .db
                .delete_traced(key.as_bytes(), None)
                .map_err(|e| e.to_string())?;
            return Ok(format!(
                "tombstone inserted at tick {}\n{}",
                self.db.now(),
                trace.render().trim_end()
            ));
        }
        self.db.delete(key.as_bytes()).map_err(|e| e.to_string())?;
        Ok(format!("tombstone inserted at tick {}", self.db.now()))
    }

    fn cmd_rdel(&mut self, args: &[&str]) -> Result<String, String> {
        let [lo, hi] = args else {
            return Err("usage: rdel <lo> <hi>".into());
        };
        let lo: u64 = lo.parse().map_err(|_| "lo must be a number".to_string())?;
        let hi: u64 = hi.parse().map_err(|_| "hi must be a number".to_string())?;
        self.db
            .range_delete_secondary(lo, hi)
            .map_err(|e| e.to_string())?;
        Ok(format!(
            "range tombstone registered; {} live",
            self.db.live_range_tombstones().len()
        ))
    }

    fn cmd_delrange(&mut self, args: &[&str]) -> Result<String, String> {
        let [start, end] = args else {
            return Err("usage: delrange <start> <end>".into());
        };
        self.db
            .range_delete_keys(start.as_bytes(), end.as_bytes())
            .map_err(|e| e.to_string())?;
        Ok(format!(
            "range tombstone inserted at tick {}; {} live",
            self.db.now(),
            self.db.live_key_range_tombstones()
        ))
    }

    fn cmd_scan(&mut self, args: &[&str]) -> Result<String, String> {
        let [lo, hi] = args else {
            return Err("usage: scan <lo> <hi>".into());
        };
        let rows = self
            .db
            .scan(lo.as_bytes(), hi.as_bytes())
            .map_err(|e| e.to_string())?;
        let mut out = String::new();
        for (k, v) in &rows {
            out.push_str(&format!(
                "{} = {}\n",
                String::from_utf8_lossy(k),
                String::from_utf8_lossy(v)
            ));
        }
        out.push_str(&format!("({} rows)", rows.len()));
        Ok(out)
    }

    fn cmd_workload(&mut self, args: &[&str]) -> Result<String, String> {
        let [n, put, del, get, scan] = args else {
            return Err("usage: workload <n> <put%> <del%> <get%> <scan%>".into());
        };
        let n: usize = n.parse().map_err(|_| "n must be a number".to_string())?;
        let pct = |s: &str| {
            s.parse::<u32>()
                .map_err(|_| "percentages must be numbers".to_string())
        };
        let (p, d, g, sc) = (pct(put)?, pct(del)?, pct(get)?, pct(scan)?);
        if p + d + g + sc != 100 {
            return Err("percentages must sum to 100".into());
        }
        let mix = OpMix {
            put_pct: p,
            delete_pct: d,
            get_pct: g,
            scan_pct: sc,
        };
        let spec = WorkloadSpec::new(mix, KeyDistribution::uniform(50_000));
        let ops = WorkloadGen::new(spec).take(n);
        let report = run_ops(&self.db, &ops).map_err(|e| e.to_string())?;
        Ok(format!(
            "ran {} ops in {:.2}ms ({:.0} ops/s); {} hits, {} misses, {} scan rows",
            report.ops,
            report.elapsed_secs * 1e3,
            report.ops_per_sec(),
            report.get_hits,
            report.get_misses,
            report.scan_rows
        ))
    }

    fn cmd_tick(&mut self, args: &[&str]) -> Result<String, String> {
        let [n] = args else {
            return Err("usage: tick <n>".into());
        };
        let n: u64 = n.parse().map_err(|_| "n must be a number".to_string())?;
        self.db.advance_clock(n);
        Ok(format!("clock now at {}", self.db.now()))
    }

    fn cmd_reopen(&mut self, args: &[&str]) -> Result<String, String> {
        let mut opts = self.opts.clone();
        opts.fade = None;
        let mut i = 0;
        while i < args.len() {
            match args[i] {
                "fade" => {
                    let d = args
                        .get(i + 1)
                        .and_then(|s| s.parse::<u64>().ok())
                        .ok_or("fade needs a numeric D_th")?;
                    opts = opts.with_fade(d);
                    i += 2;
                }
                "tile" => {
                    let h = args
                        .get(i + 1)
                        .and_then(|s| s.parse::<usize>().ok())
                        .ok_or("tile needs a numeric h")?;
                    opts = opts.with_tile(h);
                    i += 2;
                }
                "tiering" => {
                    opts.layout = CompactionLayout::Tiering;
                    i += 1;
                }
                "leveling" => {
                    opts.layout = CompactionLayout::Leveling;
                    i += 1;
                }
                "lazy" => {
                    opts.layout = CompactionLayout::LazyLeveling;
                    i += 1;
                }
                other => return Err(format!("unknown reopen option {other:?}")),
            }
        }
        // Reopen over the same filesystem keeps the data.
        let fs = self.db.vfs();
        let db = Db::open(fs, "demo", opts.clone()).map_err(|e| e.to_string())?;
        self.db = db;
        self.opts = opts;
        Ok(format!("reopened with {:?}", self.opts))
    }

    fn render_tree(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("clock tick: {}\n", self.db.now()));
        for level in self.db.level_summary() {
            if level.files == 0 {
                continue;
            }
            let bar = "#".repeat(((level.bytes / 4096) as usize).clamp(1, 50));
            out.push_str(&format!(
                "L{} {:<50} {:>4} files {:>2} runs {:>9} B {:>7} entries {:>6} tombstones\n",
                level.level,
                bar,
                level.files,
                level.runs,
                level.bytes,
                level.entries,
                level.tombstones
            ));
        }
        if out.lines().count() <= 1 {
            out.push_str("(tree is empty)\n");
        }
        out.pop();
        out
    }

    fn render_tombstones(&self) -> String {
        use std::sync::atomic::Ordering::Relaxed;
        let s = self.db.stats();
        let mut out = String::new();
        out.push_str(&format!(
            "live point tombstones: {}\n",
            self.db.live_tombstones()
        ));
        match self.db.oldest_live_tombstone_age() {
            Some(age) => out.push_str(&format!("oldest live tombstone age: {age} ticks\n")),
            None => out.push_str("oldest live tombstone age: -\n"),
        }
        if let Some(f) = &self.db.options().fade {
            out.push_str(&format!(
                "FADE threshold D_th: {} ticks\n",
                f.delete_persistence_threshold
            ));
        } else {
            out.push_str("FADE: off (tombstones live until saturation reaches them)\n");
        }
        out.push_str(&format!(
            "purged: {} (max latency {}, p99 {}, mean {:.1})\n",
            s.tombstones_purged.load(Relaxed),
            s.persistence_latency.max(),
            s.persistence_latency.quantile(0.99),
            s.persistence_latency.mean(),
        ));
        out.push_str(&format!(
            "live range tombstones: {}\n",
            self.db.live_range_tombstones().len()
        ));
        out.push_str(&format!(
            "live sort-key range tombstones: {}",
            self.db.live_key_range_tombstones()
        ));
        if let Some(age) = self.db.oldest_live_key_range_tombstone_age() {
            out.push_str(&format!(
                "\noldest sort-key range tombstone age: {age} ticks"
            ));
        }
        out
    }

    fn render_metrics(&self) -> String {
        acheron::obs::render_prometheus(
            &self.db.stats().snapshot().to_pairs(),
            &self.db.tombstone_gauges(),
            self.db.now(),
            self.opts
                .fade
                .as_ref()
                .map(|f| f.delete_persistence_threshold),
        )
        .trim_end()
        .to_string()
    }

    fn render_events(&self) -> String {
        acheron::obs::render_events(&self.db.events())
            .trim_end()
            .to_string()
    }

    fn render_stats(&self) -> String {
        use std::sync::atomic::Ordering::Relaxed;
        let s = self.db.stats();
        format!(
            "puts {} | deletes {} | range-deletes {} | gets {} | scans {}\n\
             flushes {} | compactions {} (ttl {}) | write-amp {:.2}\n\
             shadowed {} | range-purged {} | pages dropped {} | table bytes {}",
            s.puts.load(Relaxed),
            s.deletes.load(Relaxed),
            s.range_deletes.load(Relaxed),
            s.gets.load(Relaxed),
            s.scans.load(Relaxed),
            s.flushes.load(Relaxed),
            s.compactions.load(Relaxed),
            s.ttl_compactions.load(Relaxed),
            s.write_amplification(),
            s.entries_shadowed.load(Relaxed),
            s.entries_range_purged.load(Relaxed),
            s.pages_dropped.load(Relaxed),
            self.db.table_bytes(),
        )
    }
}

fn remote_help_text() -> String {
    "\
remote commands:
  put <key> <value> [dkey]     insert/update (dkey = secondary delete key)
  get <key>                    point lookup
  del <key>                    point delete
  rdel <lo> <hi>               secondary range delete over delete keys
  delrange <start> <end>       sort-key range delete (inclusive bounds)
  scan <lo> <hi>               range scan over sort keys (inclusive)
  stats                        engine + server counters
  metrics                      Prometheus-style metrics exposition
  events                       recent engine events (flight recorder)
  trace on|off                 force-trace data ops and print their spans
  traces                       server's recently sampled per-op traces
  audit                        delete-lifecycle audit (D_th compliance)
  ping                         liveness probe
  help                         this text
  quit                         close the connection and exit"
        .to_string()
}

/// Interpreter over a *remote* database: the same command surface as
/// [`Session`] (minus the embedded-only introspection commands),
/// executed through the wire protocol via [`acheron_server::Client`].
pub struct RemoteSession {
    client: Client,
    /// When on, `put`/`get`/`del` ride the wire force-traced and print
    /// the server-side span breakdown.
    tracing: bool,
    /// Client-chosen trace ids for forced traces, so the printed spans
    /// can be matched against the server's `traces` listing.
    next_trace_id: u64,
}

impl RemoteSession {
    /// Connect to a running `acheron serve` instance.
    pub fn connect(addr: &str) -> Result<RemoteSession, String> {
        let client = Client::connect(addr).map_err(|e| e.to_string())?;
        Ok(RemoteSession::from_client(client))
    }

    /// Wrap an already-connected client (tests).
    pub fn from_client(client: Client) -> RemoteSession {
        RemoteSession {
            client,
            tracing: false,
            next_trace_id: 1,
        }
    }

    fn take_trace_id(&mut self) -> u64 {
        let id = self.next_trace_id;
        self.next_trace_id += 1;
        id
    }

    fn render_wire_trace(result: &acheron_server::TracedResult) -> String {
        let mut out = format!("trace {} {}", result.trace_id, result.op);
        for (name, value) in &result.spans {
            out.push_str(&format!("\n  {name:<28} {value}"));
        }
        out
    }

    /// Execute one command line against the server.
    pub fn execute(&mut self, line: &str) -> Outcome {
        let mut parts = line.split_whitespace();
        let Some(cmd) = parts.next() else {
            return Outcome::Text(String::new());
        };
        let args: Vec<&str> = parts.collect();
        let result = match cmd {
            "help" => Ok(remote_help_text()),
            "quit" | "exit" => return Outcome::Quit,
            "ping" => self
                .client
                .ping()
                .map(|()| "pong".to_string())
                .map_err(|e| e.to_string()),
            "put" => self.cmd_put(&args),
            "get" => self.cmd_get(&args),
            "del" => self.cmd_del(&args),
            "rdel" => self.cmd_rdel(&args),
            "delrange" => self.cmd_delrange(&args),
            "scan" => self.cmd_scan(&args),
            "stats" => self.cmd_stats(),
            "metrics" => self
                .client
                .metrics()
                .map(|t| t.trim_end().to_string())
                .map_err(|e| e.to_string()),
            "events" => self
                .client
                .events()
                .map(|t| t.trim_end().to_string())
                .map_err(|e| e.to_string()),
            "trace" => self.cmd_trace(&args),
            "traces" => self
                .client
                .traces()
                .map(|t| t.trim_end().to_string())
                .map_err(|e| e.to_string()),
            "audit" => self
                .client
                .audit()
                .map(|(violation, text)| {
                    let text = text.trim_end().to_string();
                    if violation {
                        format!("{text}\nAUDIT VIOLATION")
                    } else {
                        text
                    }
                })
                .map_err(|e| e.to_string()),
            other => Err(format!("unknown command {other:?}; try `help`")),
        };
        Outcome::Text(match result {
            Ok(s) => s,
            Err(e) => format!("error: {e}"),
        })
    }

    fn cmd_trace(&mut self, args: &[&str]) -> Result<String, String> {
        match args {
            ["on"] => {
                self.tracing = true;
                Ok("tracing on: data ops print the server-side span breakdown".into())
            }
            ["off"] => {
                self.tracing = false;
                Ok("tracing off".into())
            }
            _ => Err("usage: trace on|off".into()),
        }
    }

    fn cmd_put(&mut self, args: &[&str]) -> Result<String, String> {
        match args {
            [key, value] if self.tracing => {
                let id = self.take_trace_id();
                let traced = self
                    .client
                    .put_traced(key.as_bytes(), value.as_bytes(), id)
                    .map_err(|e| e.to_string())?;
                Ok(format!("ok\n{}", Self::render_wire_trace(&traced)))
            }
            [key, value] => {
                self.client
                    .put(key.as_bytes(), value.as_bytes())
                    .map_err(|e| e.to_string())?;
                Ok("ok".into())
            }
            [key, value, dkey] => {
                let d: u64 = dkey
                    .parse()
                    .map_err(|_| "dkey must be a number".to_string())?;
                self.client
                    .put_with_dkey(key.as_bytes(), value.as_bytes(), d)
                    .map_err(|e| e.to_string())?;
                Ok("ok".into())
            }
            _ => Err("usage: put <key> <value> [dkey]".into()),
        }
    }

    fn cmd_get(&mut self, args: &[&str]) -> Result<String, String> {
        let [key] = args else {
            return Err("usage: get <key>".into());
        };
        if self.tracing {
            let id = self.take_trace_id();
            let traced = self
                .client
                .get_traced(key.as_bytes(), id)
                .map_err(|e| e.to_string())?;
            let shown = match &traced.value {
                Some(v) => String::from_utf8_lossy(v).into_owned(),
                None => "(not found)".into(),
            };
            return Ok(format!("{shown}\n{}", Self::render_wire_trace(&traced)));
        }
        match self.client.get(key.as_bytes()).map_err(|e| e.to_string())? {
            Some(v) => Ok(String::from_utf8_lossy(&v).into_owned()),
            None => Ok("(not found)".into()),
        }
    }

    fn cmd_del(&mut self, args: &[&str]) -> Result<String, String> {
        let [key] = args else {
            return Err("usage: del <key>".into());
        };
        if self.tracing {
            let id = self.take_trace_id();
            let traced = self
                .client
                .delete_traced(key.as_bytes(), id)
                .map_err(|e| e.to_string())?;
            return Ok(format!("ok\n{}", Self::render_wire_trace(&traced)));
        }
        self.client
            .delete(key.as_bytes())
            .map_err(|e| e.to_string())?;
        Ok("ok".into())
    }

    fn cmd_rdel(&mut self, args: &[&str]) -> Result<String, String> {
        let [lo, hi] = args else {
            return Err("usage: rdel <lo> <hi>".into());
        };
        let lo: u64 = lo.parse().map_err(|_| "lo must be a number".to_string())?;
        let hi: u64 = hi.parse().map_err(|_| "hi must be a number".to_string())?;
        self.client
            .range_delete_secondary(lo, hi)
            .map_err(|e| e.to_string())?;
        Ok("ok".into())
    }

    fn cmd_delrange(&mut self, args: &[&str]) -> Result<String, String> {
        let [start, end] = args else {
            return Err("usage: delrange <start> <end>".into());
        };
        self.client
            .range_delete_keys(start.as_bytes(), end.as_bytes())
            .map_err(|e| e.to_string())?;
        Ok("ok".into())
    }

    fn cmd_scan(&mut self, args: &[&str]) -> Result<String, String> {
        let [lo, hi] = args else {
            return Err("usage: scan <lo> <hi>".into());
        };
        let rows = self
            .client
            .scan(lo.as_bytes(), hi.as_bytes())
            .map_err(|e| e.to_string())?;
        let mut out = String::new();
        for (k, v) in &rows {
            out.push_str(&format!(
                "{} = {}\n",
                String::from_utf8_lossy(k),
                String::from_utf8_lossy(v)
            ));
        }
        out.push_str(&format!("({} rows)", rows.len()));
        Ok(out)
    }

    fn cmd_stats(&mut self) -> Result<String, String> {
        let pairs = self.client.stats().map_err(|e| e.to_string())?;
        let mut out = String::new();
        for (name, value) in &pairs {
            out.push_str(&format!("{name:<32} {value}\n"));
        }
        out.pop();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn text(outcome: Outcome) -> String {
        match outcome {
            Outcome::Text(s) => s,
            Outcome::Quit => panic!("unexpected quit"),
        }
    }

    #[test]
    fn put_get_del_cycle() {
        let mut s = Session::demo();
        assert_eq!(text(s.execute("put k hello")), "ok");
        assert_eq!(text(s.execute("get k")), "hello");
        assert!(text(s.execute("del k")).contains("tombstone inserted"));
        assert_eq!(text(s.execute("get k")), "(not found)");
    }

    #[test]
    fn scan_renders_rows() {
        let mut s = Session::demo();
        s.execute("put a 1");
        s.execute("put b 2");
        s.execute("put c 3");
        let out = text(s.execute("scan a b"));
        assert!(out.contains("a = 1"));
        assert!(out.contains("b = 2"));
        assert!(!out.contains("c = 3"));
        assert!(out.contains("(2 rows)"));
    }

    #[test]
    fn rdel_by_dkey() {
        let mut s = Session::demo();
        s.execute("put a v1 10");
        s.execute("put b v2 20");
        assert!(text(s.execute("rdel 15 25")).contains("1 live"));
        assert_eq!(text(s.execute("get a")), "v1");
        assert_eq!(text(s.execute("get b")), "(not found)");
    }

    #[test]
    fn delrange_erases_a_key_interval() {
        let mut s = Session::demo();
        s.execute("put user:1 a");
        s.execute("put user:2 b");
        s.execute("put zebra c");
        let out = text(s.execute("delrange user:1 user:9"));
        assert!(out.contains("1 live"), "{out}");
        assert_eq!(text(s.execute("get user:1")), "(not found)");
        assert_eq!(text(s.execute("get user:2")), "(not found)");
        assert_eq!(text(s.execute("get zebra")), "c");
        let ts = text(s.execute("tombstones"));
        assert!(ts.contains("live sort-key range tombstones: 1"), "{ts}");
        assert!(ts.contains("oldest sort-key range tombstone age"), "{ts}");
        assert!(text(s.execute("delrange onlyone")).contains("usage"));
    }

    #[test]
    fn workload_and_views_run() {
        let mut s = Session::demo();
        let out = text(s.execute("workload 2000 70 10 15 5"));
        assert!(out.contains("ran 2000 ops"), "{out}");
        let tree = text(s.execute("tree"));
        assert!(tree.contains("files"), "{tree}");
        let ts = text(s.execute("tombstones"));
        assert!(ts.contains("live point tombstones"), "{ts}");
        let st = text(s.execute("stats"));
        assert!(st.contains("write-amp"), "{st}");
        let m = text(s.execute("metrics"));
        assert!(m.contains("puts "), "{m}");
        assert!(m.contains("db_live_tombstones"), "{m}");
        assert!(m.contains("db_tombstone_age_ticks_bucket"), "{m}");
        let ev = text(s.execute("events"));
        assert!(ev.contains("memtable_sealed"), "{ev}");
    }

    #[test]
    fn tick_and_maintain_purge_tombstones() {
        let mut s = Session::demo();
        s.execute("workload 3000 60 40 0 0");
        s.execute("flush");
        // Step time past the FADE threshold with maintenance.
        for _ in 0..40 {
            s.execute("tick 2000");
            s.execute("maintain");
        }
        assert_eq!(s.db().live_tombstones(), 0);
    }

    #[test]
    fn reopen_switches_configuration_and_keeps_data() {
        let mut s = Session::demo();
        s.execute("put survivor here");
        let out = text(s.execute("reopen tiering tile 4 fade 1000"));
        assert!(out.contains("Tiering"), "{out}");
        assert_eq!(text(s.execute("get survivor")), "here");
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut s = Session::demo();
        assert!(text(s.execute("bogus")).contains("unknown command"));
        assert!(text(s.execute("put onlykey")).contains("usage"));
        assert!(text(s.execute("rdel 5 x")).contains("number"));
        assert!(text(s.execute("workload 10 50 50 50 50")).contains("sum to 100"));
        assert!(text(s.execute("tick abc")).contains("number"));
        // Still usable afterwards.
        assert_eq!(text(s.execute("put k v")), "ok");
    }

    #[test]
    fn quit_and_empty_lines() {
        let mut s = Session::demo();
        assert_eq!(s.execute(""), Outcome::Text(String::new()));
        assert_eq!(s.execute("quit"), Outcome::Quit);
    }

    #[test]
    fn remote_session_mirrors_the_embedded_command_surface() {
        use acheron_server::{Server, ServerOptions};
        let db = Arc::new(
            Db::open(
                Arc::new(MemFs::new()),
                "demo",
                DbOptions::small().with_fade(50_000),
            )
            .unwrap(),
        );
        let mut server = Server::start(db, "127.0.0.1:0", ServerOptions::default()).unwrap();
        let mut s = RemoteSession::connect(&server.local_addr().to_string()).unwrap();
        assert_eq!(text(s.execute("ping")), "pong");
        assert_eq!(text(s.execute("put k hello")), "ok");
        assert_eq!(text(s.execute("get k")), "hello");
        assert_eq!(text(s.execute("del k")), "ok");
        assert_eq!(text(s.execute("get k")), "(not found)");
        s.execute("put a v1 10");
        s.execute("put b v2 20");
        assert_eq!(text(s.execute("rdel 15 25")), "ok");
        assert_eq!(text(s.execute("get b")), "(not found)");
        s.execute("put user:1 x");
        assert_eq!(text(s.execute("delrange user: user:~")), "ok");
        assert_eq!(text(s.execute("get user:1")), "(not found)");
        let scan = text(s.execute("scan a z"));
        assert!(scan.contains("a = v1"), "{scan}");
        let stats = text(s.execute("stats"));
        assert!(stats.contains("server_requests"), "{stats}");
        assert!(stats.contains("puts"), "{stats}");
        let metrics = text(s.execute("metrics"));
        assert!(metrics.contains("db_live_tombstones"), "{metrics}");
        assert!(metrics.contains("server_requests"), "{metrics}");
        let events = text(s.execute("events"));
        assert!(events.contains("wal_group_commit"), "{events}");
        assert!(text(s.execute("trace on")).contains("tracing on"));
        let traced_put = text(s.execute("put traced:1 v"));
        assert!(traced_put.contains("trace 1 put"), "{traced_put}");
        assert!(traced_put.contains("total_micros"), "{traced_put}");
        let traced_get = text(s.execute("get traced:1"));
        assert!(traced_get.starts_with("v\n"), "{traced_get}");
        assert!(traced_get.contains("memtable_probe_micros"), "{traced_get}");
        assert!(text(s.execute("trace off")).contains("tracing off"));
        let traces = text(s.execute("traces"));
        assert!(traces.contains("put"), "{traces}");
        let audit = text(s.execute("audit"));
        assert!(audit.contains("D_th"), "{audit}");
        assert!(!audit.contains("AUDIT VIOLATION"), "{audit}");
        assert!(text(s.execute("bogus")).contains("unknown command"));
        assert_eq!(s.execute("quit"), Outcome::Quit);
        server.shutdown();
    }

    #[test]
    fn help_lists_every_command() {
        let mut s = Session::demo();
        let h = text(s.execute("help"));
        for cmd in [
            "put",
            "get",
            "del",
            "rdel",
            "delrange",
            "scan",
            "workload",
            "tick",
            "tree",
            "stats",
            "metrics",
            "events",
            "trace on|off",
            "traces",
            "audit",
        ] {
            assert!(h.contains(cmd), "help missing {cmd}");
        }
    }

    #[test]
    fn trace_mode_prints_span_breakdowns() {
        let mut s = Session::demo();
        assert!(text(s.execute("trace on")).contains("tracing on"));
        let put = text(s.execute("put k hello"));
        assert!(put.starts_with("ok\n"), "{put}");
        assert!(put.contains("total_micros"), "{put}");
        assert!(put.contains("memtable_insert_micros"), "{put}");
        let get = text(s.execute("get k"));
        assert!(get.starts_with("hello\n"), "{get}");
        assert!(get.contains("memtable_probe_micros"), "{get}");
        let del = text(s.execute("del k"));
        assert!(del.contains("tombstone inserted"), "{del}");
        assert!(del.contains("total_micros"), "{del}");
        // Forced traces land in the recent ring.
        let traces = text(s.execute("traces"));
        assert!(traces.contains("put"), "{traces}");
        assert!(traces.contains("get"), "{traces}");
        assert!(text(s.execute("trace off")).contains("tracing off"));
        assert_eq!(text(s.execute("put k2 v2")), "ok");
        assert!(text(s.execute("trace sideways")).contains("usage"));
    }

    #[test]
    fn audit_reports_cohort_compliance() {
        let mut s = Session::demo();
        s.execute("put a 1");
        s.execute("del a");
        s.execute("flush");
        let audit = text(s.execute("audit"));
        assert!(audit.contains("D_th"), "{audit}");
        assert!(audit.contains("cohort"), "{audit}");
    }
}
