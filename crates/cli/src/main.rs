//! `acheron` — interactive terminal demo of the delete-aware LSM engine.
//!
//! Three modes:
//!
//! ```text
//! $ cargo run -p acheron-cli                     # embedded REPL
//! acheron demo (FADE D_th=50000, in-memory). `help` for commands.
//! > put user:1 alice
//! ok
//!
//! $ cargo run -p acheron-cli -- serve 127.0.0.1:7878    # network server
//! serving on 127.0.0.1:7878 (`status` for a status line, `quit` to stop)
//!
//! $ cargo run -p acheron-cli -- serve 127.0.0.1:7878 --shards 4 \
//!       --rate-limit 50000 --burst 1000    # sharded + admission control
//!
//! $ cargo run -p acheron-cli -- connect 127.0.0.1:7878  # network client
//! connected to 127.0.0.1:7878. `help` for commands.
//! > get user:1
//! ```
//!
//! One-shot observability (`host:port` hits a running server over the
//! wire; a directory opens the database offline):
//!
//! ```text
//! $ cargo run -p acheron-cli -- stats 127.0.0.1:7878     # metrics text
//! $ cargo run -p acheron-cli -- events /path/to/db      # event ring
//! $ cargo run -p acheron-cli -- trace 127.0.0.1:7878    # sampled op traces
//! $ cargo run -p acheron-cli -- audit /path/to/db       # D_th compliance
//! ```
//!
//! `audit` exits 0 when every delete family is within `D_th` and 1 on
//! a violation, so it can gate a deployment pipeline directly.
//!
//! Also scriptable: `echo "put a 1\nget a" | cargo run -p acheron-cli`.

use std::io::{BufRead, Write};
use std::sync::Arc;

use acheron::{Db, DbOptions, ShardedDb};
use acheron_cli::{Outcome, RemoteSession, Session};
use acheron_server::{Client, Engine, RateLimitConfig, Server, ServerOptions};
use acheron_vfs::{MemFs, StdFs};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("serve") => match ServeArgs::parse(&args[2..]) {
            Ok(serve_args) => serve(&serve_args),
            Err(e) => {
                eprintln!("{e}");
                eprintln!(
                    "usage: acheron serve [addr] [--shards N] [--memory-budget BYTES] \
                     [--rate-limit OPS] [--burst B]"
                );
                std::process::exit(2);
            }
        },
        Some("connect") => {
            let addr = args.get(2).map(String::as_str).unwrap_or("127.0.0.1:7878");
            match RemoteSession::connect(addr) {
                Ok(session) => repl(
                    session,
                    &format!("connected to {addr}. `help` for commands."),
                ),
                Err(e) => {
                    eprintln!("connect failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some(cmd @ ("stats" | "events")) => {
            let Some(target) = args.get(2) else {
                eprintln!("usage: acheron {cmd} <host:port | db-directory>");
                std::process::exit(2);
            };
            expose(cmd, target);
        }
        Some("trace") => {
            let Some(target) = args.get(2) else {
                eprintln!("usage: acheron trace <host:port>");
                std::process::exit(2);
            };
            trace_listing(target);
        }
        Some("audit") => match AuditArgs::parse(&args[2..]) {
            Ok(audit_args) => audit(&audit_args),
            Err(e) => {
                eprintln!("{e}");
                eprintln!("usage: acheron audit <host:port | db-directory> [--d-th TICKS]");
                std::process::exit(2);
            }
        },
        _ => repl(
            Session::demo(),
            "acheron demo (FADE D_th=50000, in-memory). `help` for commands.",
        ),
    }
}

/// One-shot exposition: print the metrics text (`stats`) or the event
/// ring (`events`) and exit. A `host:port` target queries a running
/// server over the wire; anything else is treated as a database
/// directory and opened offline (recovery events included).
fn expose(cmd: &str, target: &str) {
    let result = if target.contains(':') {
        Client::connect(target)
            .and_then(|mut client| match cmd {
                "stats" => client.metrics(),
                _ => client.events(),
            })
            .map_err(|e| format!("query {target}: {e}"))
    } else if std::path::Path::new(target).is_dir() {
        let fs = Arc::new(StdFs::new(false));
        // A root with a SHARDMAP is a sharded fleet: open every shard
        // and render the aggregated (fleet-wide) view.
        match acheron::read_shard_map(fs.as_ref(), target) {
            Err(e) => Err(format!("open {target}: {e}")),
            Ok(Some(n)) => ShardedDb::open(fs, target, DbOptions::default(), n as usize)
                .map(|db| match cmd {
                    "stats" => {
                        acheron::obs::render_prometheus(
                            &db.stats_snapshot().to_pairs(),
                            &db.tombstone_gauges(),
                            db.now(),
                            db.options()
                                .fade
                                .as_ref()
                                .map(|f| f.delete_persistence_threshold),
                        ) + &format!(
                            "db_shards {}\ndb_fleet_max_tombstone_age_ticks {}\n",
                            db.shard_count(),
                            db.fleet_max_tombstone_age().unwrap_or(0)
                        )
                    }
                    _ => acheron::obs::render_sharded_events(&db.shard_events()),
                })
                .map_err(|e| format!("open {target}: {e}")),
            Ok(None) => Db::open(fs, target, DbOptions::default())
                .map(|db| match cmd {
                    "stats" => acheron::obs::render_prometheus(
                        &db.stats_snapshot().to_pairs(),
                        &db.tombstone_gauges(),
                        db.now(),
                        db.options()
                            .fade
                            .as_ref()
                            .map(|f| f.delete_persistence_threshold),
                    ),
                    _ => acheron::obs::render_events(&db.events()),
                })
                .map_err(|e| format!("open {target}: {e}")),
        }
    } else {
        Err(format!(
            "{target} is neither a host:port address nor a database directory"
        ))
    };
    match result {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}

/// One-shot trace listing: print the server's recently sampled per-op
/// traces. Traces are runtime state held in the engine's retention
/// ring, so only a live server can answer — a directory has none.
fn trace_listing(target: &str) {
    if !target.contains(':') {
        eprintln!("traces are runtime state; `acheron trace` needs a running server (host:port)");
        std::process::exit(2);
    }
    match Client::connect(target).and_then(|mut client| client.traces()) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("query {target}: {e}");
            std::process::exit(1);
        }
    }
}

/// Parsed `audit` subcommand arguments.
struct AuditArgs {
    target: String,
    d_th: Option<u64>,
}

impl AuditArgs {
    fn parse(args: &[String]) -> Result<AuditArgs, String> {
        let mut target = None;
        let mut d_th = None;
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--d-th" => {
                    let v = it.next().ok_or("--d-th requires a value")?;
                    d_th = Some(
                        v.parse()
                            .map_err(|_| "--d-th must be an integer (ticks)".to_string())?,
                    );
                }
                other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
                other => {
                    if target.replace(other.to_string()).is_some() {
                        return Err(format!("unexpected extra argument {other}"));
                    }
                }
            }
        }
        Ok(AuditArgs {
            target: target.ok_or("audit needs a target")?,
            d_th,
        })
    }
}

/// One-shot delete-lifecycle audit. Prints the per-cohort report and
/// exits 0 when every delete family is within `D_th`, 1 on a
/// violation. A `host:port` target asks a running server (which judges
/// by its own configured threshold); a directory is opened offline —
/// the cohort ledger is runtime state, so an offline audit judges by
/// the persistent gauges alone. `--d-th` overrides the threshold for
/// directory targets.
fn audit(args: &AuditArgs) {
    let target = args.target.as_str();
    if target.contains(':') {
        if args.d_th.is_some() {
            eprintln!("--d-th applies to directory targets; a server judges by its own threshold");
            std::process::exit(2);
        }
        match Client::connect(target).and_then(|mut client| client.audit()) {
            Ok((violation, text)) => {
                print!("{text}");
                std::process::exit(i32::from(violation));
            }
            Err(e) => {
                eprintln!("query {target}: {e}");
                std::process::exit(1);
            }
        }
    }
    if !std::path::Path::new(target).is_dir() {
        eprintln!("{target} is neither a host:port address nor a database directory");
        std::process::exit(2);
    }
    let fs = Arc::new(StdFs::new(false));
    let report = match acheron::read_shard_map(fs.as_ref(), target) {
        Err(e) => Err(format!("open {target}: {e}")),
        Ok(Some(n)) => ShardedDb::open(fs, target, DbOptions::default(), n as usize)
            .map(|db| db.delete_audit())
            .map_err(|e| format!("open {target}: {e}")),
        Ok(None) => Db::open(fs, target, DbOptions::default())
            .map(|db| db.delete_audit())
            .map_err(|e| format!("open {target}: {e}")),
    };
    match report {
        Ok(mut report) => {
            if args.d_th.is_some() {
                report.d_th = args.d_th;
            }
            print!("{}", report.render());
            std::process::exit(i32::from(!report.ok()));
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}

/// Parsed `serve` subcommand arguments.
struct ServeArgs {
    addr: String,
    shards: usize,
    /// One unified byte budget across memtables, the shared block
    /// cache, and pinned filters (`DbOptions::memory_budget_bytes`);
    /// 0 keeps the preset's static sizing.
    memory_budget: usize,
    rate_limit: Option<RateLimitConfig>,
}

impl ServeArgs {
    /// Parse `[addr] [--shards N] [--memory-budget BYTES]
    /// [--rate-limit OPS] [--burst B]`. `--burst` without
    /// `--rate-limit` is rejected (a burst cap is meaningless with no
    /// sustained rate to refill at).
    fn parse(args: &[String]) -> Result<ServeArgs, String> {
        let mut addr = None;
        let mut shards = 1usize;
        let mut memory_budget = 0usize;
        let mut rate: Option<u64> = None;
        let mut burst: Option<u64> = None;
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut flag_value =
                |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
            match arg.as_str() {
                "--shards" => {
                    shards = flag_value("--shards")?
                        .parse()
                        .map_err(|_| "--shards must be a positive integer".to_string())?;
                    if shards == 0 {
                        return Err("--shards must be at least 1".into());
                    }
                }
                "--memory-budget" => {
                    memory_budget = flag_value("--memory-budget")?
                        .parse()
                        .map_err(|_| "--memory-budget must be an integer (bytes)".to_string())?;
                    if memory_budget > 0 && memory_budget < 64 * 1024 {
                        return Err("--memory-budget must be 0 or at least 65536 bytes".into());
                    }
                }
                "--rate-limit" => {
                    rate =
                        Some(flag_value("--rate-limit")?.parse().map_err(|_| {
                            "--rate-limit must be an integer (ops/sec)".to_string()
                        })?);
                }
                "--burst" => {
                    burst = Some(
                        flag_value("--burst")?
                            .parse()
                            .map_err(|_| "--burst must be an integer".to_string())?,
                    );
                }
                other if other.starts_with("--") => {
                    return Err(format!("unknown flag {other}"));
                }
                other => {
                    if addr.replace(other.to_string()).is_some() {
                        return Err(format!("unexpected extra argument {other}"));
                    }
                }
            }
        }
        let rate_limit = match (rate, burst) {
            (Some(ops_per_sec), burst) => Some(RateLimitConfig {
                ops_per_sec,
                burst: burst.unwrap_or(ops_per_sec.max(1)),
            }),
            (None, Some(_)) => return Err("--burst requires --rate-limit".into()),
            (None, None) => None,
        };
        Ok(ServeArgs {
            addr: addr.unwrap_or_else(|| "127.0.0.1:7878".into()),
            shards,
            memory_budget,
            rate_limit,
        })
    }
}

/// Serve an in-memory demo database until stdin closes or says `quit`.
/// Any other input line prints the server status line, so an operator
/// can watch connections, throughput, and backpressure state live.
/// `--shards N` partitions the keyspace across N engines;
/// `--memory-budget BYTES` puts memtables, the block cache, and pinned
/// filters under one adaptively split budget; `--rate-limit` adds
/// per-connection token-bucket admission control.
fn serve(args: &ServeArgs) {
    let mut opts = DbOptions::small().with_fade(50_000);
    if args.memory_budget > 0 {
        opts = opts.with_memory_budget(args.memory_budget);
    }
    let engine: Engine = if args.shards > 1 {
        match ShardedDb::open(Arc::new(MemFs::new()), "serve-db", opts, args.shards) {
            Ok(db) => Arc::new(db).into(),
            Err(e) => {
                eprintln!("open failed: {e}");
                std::process::exit(1);
            }
        }
    } else {
        match Db::open(Arc::new(MemFs::new()), "serve-db", opts) {
            Ok(db) => Arc::new(db).into(),
            Err(e) => {
                eprintln!("open failed: {e}");
                std::process::exit(1);
            }
        }
    };
    let server_opts = ServerOptions {
        rate_limit: args.rate_limit,
        ..ServerOptions::default()
    };
    let mut server = match Server::start(engine, args.addr.as_str(), server_opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "serving on {} (`status` for a status line, `quit` to stop)",
        server.local_addr()
    );
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line.trim() == "quit" => break,
            Ok(_) => println!("{}", server.status_line()),
            Err(_) => break,
        }
    }
    // Shutdown ordering: stop the service (drains in-flight requests),
    // then drop the engine handle (joins its background executor).
    server.shutdown();
    println!("stopped: {}", server.status_line());
}

/// The REPL loop, generic over embedded and remote sessions.
trait Exec {
    fn exec(&mut self, line: &str) -> Outcome;
}

impl Exec for Session {
    fn exec(&mut self, line: &str) -> Outcome {
        self.execute(line)
    }
}

impl Exec for RemoteSession {
    fn exec(&mut self, line: &str) -> Outcome {
        self.execute(line)
    }
}

fn repl(mut session: impl Exec, banner: &str) {
    let interactive = std::env::args().all(|a| a != "--quiet");
    if interactive {
        println!("{banner}");
    }
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    loop {
        if interactive {
            print!("> ");
            let _ = stdout.flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        match session.exec(line.trim()) {
            Outcome::Quit => break,
            Outcome::Text(t) => {
                if !t.is_empty() {
                    println!("{t}");
                }
            }
        }
    }
}
