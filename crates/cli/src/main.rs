//! `acheron` — interactive terminal demo of the delete-aware LSM engine.
//!
//! Three modes:
//!
//! ```text
//! $ cargo run -p acheron-cli                     # embedded REPL
//! acheron demo (FADE D_th=50000, in-memory). `help` for commands.
//! > put user:1 alice
//! ok
//!
//! $ cargo run -p acheron-cli -- serve 127.0.0.1:7878    # network server
//! serving on 127.0.0.1:7878 (`status` for a status line, `quit` to stop)
//!
//! $ cargo run -p acheron-cli -- connect 127.0.0.1:7878  # network client
//! connected to 127.0.0.1:7878. `help` for commands.
//! > get user:1
//! ```
//!
//! One-shot observability (`host:port` hits a running server over the
//! wire; a directory opens the database offline):
//!
//! ```text
//! $ cargo run -p acheron-cli -- stats 127.0.0.1:7878     # metrics text
//! $ cargo run -p acheron-cli -- events /path/to/db      # event ring
//! ```
//!
//! Also scriptable: `echo "put a 1\nget a" | cargo run -p acheron-cli`.

use std::io::{BufRead, Write};
use std::sync::Arc;

use acheron::{Db, DbOptions};
use acheron_cli::{Outcome, RemoteSession, Session};
use acheron_server::{Client, Server, ServerOptions};
use acheron_vfs::{MemFs, StdFs};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("serve") => {
            let addr = args.get(2).map(String::as_str).unwrap_or("127.0.0.1:7878");
            serve(addr);
        }
        Some("connect") => {
            let addr = args.get(2).map(String::as_str).unwrap_or("127.0.0.1:7878");
            match RemoteSession::connect(addr) {
                Ok(session) => repl(
                    session,
                    &format!("connected to {addr}. `help` for commands."),
                ),
                Err(e) => {
                    eprintln!("connect failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some(cmd @ ("stats" | "events")) => {
            let Some(target) = args.get(2) else {
                eprintln!("usage: acheron {cmd} <host:port | db-directory>");
                std::process::exit(2);
            };
            expose(cmd, target);
        }
        _ => repl(
            Session::demo(),
            "acheron demo (FADE D_th=50000, in-memory). `help` for commands.",
        ),
    }
}

/// One-shot exposition: print the metrics text (`stats`) or the event
/// ring (`events`) and exit. A `host:port` target queries a running
/// server over the wire; anything else is treated as a database
/// directory and opened offline (recovery events included).
fn expose(cmd: &str, target: &str) {
    let result = if target.contains(':') {
        Client::connect(target)
            .and_then(|mut client| match cmd {
                "stats" => client.metrics(),
                _ => client.events(),
            })
            .map_err(|e| format!("query {target}: {e}"))
    } else if std::path::Path::new(target).is_dir() {
        Db::open(Arc::new(StdFs::new(false)), target, DbOptions::default())
            .map(|db| match cmd {
                "stats" => acheron::obs::render_prometheus(
                    &db.stats().snapshot().to_pairs(),
                    &db.tombstone_gauges(),
                    db.now(),
                    db.options()
                        .fade
                        .as_ref()
                        .map(|f| f.delete_persistence_threshold),
                ),
                _ => acheron::obs::render_events(&db.events()),
            })
            .map_err(|e| format!("open {target}: {e}"))
    } else {
        Err(format!(
            "{target} is neither a host:port address nor a database directory"
        ))
    };
    match result {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}

/// Serve an in-memory demo database until stdin closes or says `quit`.
/// Any other input line prints the server status line, so an operator
/// can watch connections, throughput, and backpressure state live.
fn serve(addr: &str) {
    let opts = DbOptions::small().with_fade(50_000);
    let db = match Db::open(Arc::new(MemFs::new()), "serve-db", opts) {
        Ok(db) => Arc::new(db),
        Err(e) => {
            eprintln!("open failed: {e}");
            std::process::exit(1);
        }
    };
    let mut server = match Server::start(Arc::clone(&db), addr, ServerOptions::default()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "serving on {} (`status` for a status line, `quit` to stop)",
        server.local_addr()
    );
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line.trim() == "quit" => break,
            Ok(_) => println!("{}", server.status_line()),
            Err(_) => break,
        }
    }
    // Shutdown ordering: stop the service (drains in-flight requests),
    // then drop the engine handle (joins its background executor).
    server.shutdown();
    println!("stopped: {}", server.status_line());
}

/// The REPL loop, generic over embedded and remote sessions.
trait Exec {
    fn exec(&mut self, line: &str) -> Outcome;
}

impl Exec for Session {
    fn exec(&mut self, line: &str) -> Outcome {
        self.execute(line)
    }
}

impl Exec for RemoteSession {
    fn exec(&mut self, line: &str) -> Outcome {
        self.execute(line)
    }
}

fn repl(mut session: impl Exec, banner: &str) {
    let interactive = std::env::args().all(|a| a != "--quiet");
    if interactive {
        println!("{banner}");
    }
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    loop {
        if interactive {
            print!("> ");
            let _ = stdout.flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        match session.exec(line.trim()) {
            Outcome::Quit => break,
            Outcome::Text(t) => {
                if !t.is_empty() {
                    println!("{t}");
                }
            }
        }
    }
}
