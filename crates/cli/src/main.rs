//! `acheron` — interactive terminal demo of the delete-aware LSM engine.
//!
//! ```text
//! $ cargo run -p acheron-cli
//! acheron demo (FADE D_th=50000, in-memory). `help` for commands.
//! > put user:1 alice
//! ok
//! > del user:1
//! tombstone inserted at tick 2
//! > tombstones
//! live point tombstones: 1
//! ...
//! ```
//!
//! Also scriptable: `echo "put a 1\nget a" | cargo run -p acheron-cli`.

use std::io::{BufRead, Write};

use acheron_cli::{Outcome, Session};

fn main() {
    let mut session = Session::demo();
    let interactive = std::env::args().all(|a| a != "--quiet");
    if interactive {
        println!("acheron demo (FADE D_th=50000, in-memory). `help` for commands.");
    }
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    loop {
        if interactive {
            print!("> ");
            let _ = stdout.flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        match session.execute(line.trim()) {
            Outcome::Quit => break,
            Outcome::Text(t) => {
                if !t.is_empty() {
                    println!("{t}");
                }
            }
        }
    }
}
