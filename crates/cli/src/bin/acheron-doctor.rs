//! `acheron-doctor` — offline integrity check of a database directory.
//!
//! ```text
//! $ acheron-doctor /path/to/db [--d-th <ticks>]
//! checked 12 tables (48,201 entries, 301 tombstones), 1 WAL (17 records)
//! tombstones: level 1: 204 live across 3 files, oldest age 812 ticks
//! warnings: none
//! ```
//!
//! With `--d-th` the report warns when the oldest live tombstone has
//! outlived the delete persistence threshold — the offline form of the
//! engine's FADE promise.
//!
//! A directory containing a `SHARDMAP` manifest is checked as a sharded
//! fleet: every shard is verified (a missing shard fails the check —
//! never silently skipped), each shard's report is printed, and the
//! fleet-wide maximum unresolved tombstone age is summarized at the end
//! — the per-shard `D_th` invariant judged across the whole fleet.
//!
//! Read-only: unlike opening the database, the doctor never rewrites the
//! manifest or collects files, so it is safe to run against a directory
//! another process might recover later.

use acheron::{check_db_with_threshold, check_sharded_db, read_shard_map, DoctorReport};
use acheron_vfs::StdFs;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dir: Option<String> = None;
    let mut d_th: Option<u64> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--d-th" {
            d_th = it.next().and_then(|v| v.parse().ok());
            if d_th.is_none() {
                eprintln!("--d-th requires a tick count");
                std::process::exit(2);
            }
        } else {
            dir = Some(arg);
        }
    }
    let Some(dir) = dir else {
        eprintln!("usage: acheron-doctor <db-directory> [--d-th <ticks>]");
        std::process::exit(2);
    };
    let fs = StdFs::new(false);
    let sharded = match read_shard_map(&fs, &dir) {
        Ok(map) => map.is_some(),
        Err(e) => {
            eprintln!("FAILED: {e}");
            std::process::exit(1);
        }
    };
    if sharded {
        match check_sharded_db(&fs, &dir, d_th) {
            Ok(reports) => {
                let mut fleet_max_age: Option<u64> = None;
                for (i, report) in reports.iter().enumerate() {
                    println!("== shard {i} ==");
                    print_report(report, d_th);
                    fleet_max_age = fleet_max_age.max(report.worst_unresolved_delete_age());
                }
                println!(
                    "fleet: {} shards, max unresolved tombstone age {} ticks{}",
                    reports.len(),
                    fleet_max_age.unwrap_or(0),
                    match d_th {
                        Some(d) => format!(" (threshold {d})"),
                        None => String::new(),
                    }
                );
            }
            Err(e) => {
                eprintln!("FAILED: {e}");
                std::process::exit(1);
            }
        }
    } else {
        match check_db_with_threshold(&fs, &dir, d_th) {
            Ok(report) => print_report(&report, d_th),
            Err(e) => {
                eprintln!("FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
}

fn print_report(report: &DoctorReport, d_th: Option<u64>) {
    println!(
        "checked {} tables ({} entries, {} tombstones, {} key-range tombstones, \
         {} range tombstones), {} WAL segments ({} records)",
        report.tables_checked,
        report.entries,
        report.tombstones,
        report.key_range_tombstones,
        report.range_tombstones,
        report.wals_checked,
        report.wal_records
    );
    for l in &report.level_tombstones {
        println!(
            "tombstones: level {}: {} live across {} files, oldest age {} ticks{}",
            l.level,
            l.tombstones,
            l.files_with_tombstones,
            l.max_unresolved_age.unwrap_or(0),
            match d_th {
                Some(d) => format!(" (threshold {d})"),
                None => String::new(),
            }
        );
        if l.key_range_tombstones > 0 {
            println!(
                "key-range tombstones: level {}: {} live, oldest unresolved age {} ticks{}",
                l.level,
                l.key_range_tombstones,
                l.max_unresolved_key_range_age.unwrap_or(0),
                match d_th {
                    Some(d) => format!(" (threshold {d})"),
                    None => String::new(),
                }
            );
        }
    }
    // The one-line `D_th` judgment: every delete family folded into a
    // single worst age. Point and key-range tombstones carry birth
    // ticks on disk; dead vlog extents do not, so they are listed as
    // pending rather than aged.
    let mut fold = format!(
        "worst unresolved delete age: {} ticks (point + key-range",
        report.worst_unresolved_delete_age().unwrap_or(0)
    );
    if report.vlog_dead_bytes > 0 {
        fold.push_str(&format!(
            "; {} dead vlog bytes awaiting GC",
            report.vlog_dead_bytes
        ));
    }
    fold.push(')');
    match (d_th, report.worst_unresolved_delete_age()) {
        (Some(d), Some(age)) if age > d => fold.push_str(&format!(" — EXCEEDS D_th {d}")),
        (Some(d), _) => fold.push_str(&format!(" — within D_th {d}")),
        (None, _) => {}
    }
    println!("{fold}");
    if report.warnings.is_empty() {
        println!("warnings: none");
    } else {
        for w in &report.warnings {
            println!("warning: {w}");
        }
    }
}
