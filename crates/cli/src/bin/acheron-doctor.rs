//! `acheron-doctor` — offline integrity check of a database directory.
//!
//! ```text
//! $ acheron-doctor /path/to/db
//! checked 12 tables (48,201 entries, 301 tombstones), 1 WAL (17 records)
//! warnings: none
//! ```
//!
//! Read-only: unlike opening the database, the doctor never rewrites the
//! manifest or collects files, so it is safe to run against a directory
//! another process might recover later.

use acheron::check_db;
use acheron_vfs::StdFs;

fn main() {
    let Some(dir) = std::env::args().nth(1) else {
        eprintln!("usage: acheron-doctor <db-directory>");
        std::process::exit(2);
    };
    let fs = StdFs::new(false);
    match check_db(&fs, &dir) {
        Ok(report) => {
            println!(
                "checked {} tables ({} entries, {} tombstones, {} range tombstones), \
                 {} WAL segments ({} records)",
                report.tables_checked,
                report.entries,
                report.tombstones,
                report.range_tombstones,
                report.wals_checked,
                report.wal_records
            );
            if report.warnings.is_empty() {
                println!("warnings: none");
            } else {
                for w in &report.warnings {
                    println!("warning: {w}");
                }
            }
        }
        Err(e) => {
            eprintln!("FAILED: {e}");
            std::process::exit(1);
        }
    }
}
