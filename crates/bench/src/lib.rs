//! Shared harness code for the Acheron experiment binaries.
//!
//! Each `src/bin/expN_*.rs` binary regenerates one table/figure of the
//! evaluation (see DESIGN.md's experiment index and EXPERIMENTS.md for
//! expectations vs. measurements). Experiments run on [`MemFs`] with a
//! logical clock: write/space amplification are exact byte ratios and
//! persistence latencies are deterministic tick counts, so the *shapes*
//! the paper claims are reproduced without device noise.

use std::sync::Arc;

use acheron::{Db, DbOptions};
use acheron_vfs::MemFs;

/// Open a fresh in-memory database.
pub fn open_db(opts: DbOptions) -> (Arc<MemFs>, Db) {
    let fs = Arc::new(MemFs::new());
    let db = Db::open(fs.clone(), "db", opts).expect("open db");
    (fs, db)
}

/// Small-scale options shared by the experiments: kilobyte buffers so
/// trees grow several levels deep with ~10^4-10^5 entries.
pub fn base_opts() -> DbOptions {
    DbOptions::small()
}

/// Advance the logical clock by `total` ticks in steps of `step`,
/// running maintenance at each step — the logical-clock stand-in for a
/// deployment's background maintenance timer. (A single giant jump would
/// deny FADE any opportunity to act before a deadline, inflating the
/// measured persistence latencies artificially.)
pub fn settle(db: &Db, total: u64, step: u64) {
    let step = step.max(1);
    let mut advanced = 0;
    while advanced < total {
        let inc = step.min(total - advanced);
        db.advance_clock(inc);
        advanced += inc;
        db.maintain().expect("maintenance");
    }
}

/// Background-mode analogue of [`settle`]: advance the clock in the
/// same steps but, instead of running maintenance inline, wait for the
/// worker pool to drain — the workers themselves must notice each TTL
/// deadline.
pub fn settle_background(db: &Db, total: u64, step: u64) {
    let step = step.max(1);
    let mut advanced = 0;
    while advanced < total {
        let inc = step.min(total - advanced);
        db.advance_clock(inc);
        advanced += inc;
        db.wait_idle().expect("background maintenance");
    }
}

/// Render an ASCII table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{h:<w$}", w = widths[i]))
        .collect();
    println!("{}", header_line.join("  "));
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<w$}", w = widths.get(i).copied().unwrap_or(0)))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Format a float to 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a float to 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Thousands-grouped integer.
pub fn grouped(v: u64) -> String {
    let s = v.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouping() {
        assert_eq!(grouped(0), "0");
        assert_eq!(grouped(999), "999");
        assert_eq!(grouped(1_000), "1,000");
        assert_eq!(grouped(1_234_567), "1,234,567");
    }

    #[test]
    fn open_db_works() {
        let (_fs, db) = open_db(base_opts());
        db.put(b"k", b"v").unwrap();
        assert!(db.get(b"k").unwrap().is_some());
    }
}
