//! E6 — KiWi's read/secondary-delete tradeoff vs. tile granularity `h`.
//!
//! Claim checked: the delete-tile size `h` trades sort-key read locality
//! (a point lookup must consult up to `h` pages per tile, mitigated by
//! per-page Bloom filters) against secondary-delete granularity (larger
//! tiles → narrower per-page dkey bands → more droppable pages). Lethe
//! argues the point-lookup cost stays near-flat thanks to the filters
//! while the delete benefit grows.

use std::time::Instant;

use acheron_bench::{base_opts, f2, f3, grouped, open_db, print_table};
use acheron_workload::key_bytes;

const POPULATION: u64 = 15_000;
const LOOKUPS: u64 = 15_000;
const SCANS: u64 = 200;
const SCAN_WIDTH: u64 = 200;

fn run(h: usize) -> Vec<String> {
    let opts = base_opts().with_tile(h);
    let (_fs, db) = open_db(opts);
    for i in 0..POPULATION {
        // Scrambled keys, timestamp dkeys: the adversarial case for the
        // weave (sort order uncorrelated with delete order).
        db.put_with_dkey(&key_bytes(i % 7_919 * 7 + i / 7_919), &[b'v'; 64], i)
            .unwrap();
    }
    db.compact_all().unwrap();

    // Point lookups.
    let start = Instant::now();
    for q in 0..LOOKUPS {
        let i = (q * 48_271) % POPULATION;
        db.get(&key_bytes(i % 7_919 * 7 + i / 7_919)).unwrap();
    }
    let lookup_us = start.elapsed().as_secs_f64() * 1e6 / LOOKUPS as f64;

    // Range scans on the sort key (the weave's worst case: pages within
    // a tile must be merged).
    let start = Instant::now();
    let mut rows = 0u64;
    for q in 0..SCANS {
        let lo = (q * 6_151) % (POPULATION - SCAN_WIDTH);
        rows += db
            .scan(&key_bytes(lo), &key_bytes(lo + SCAN_WIDTH))
            .unwrap()
            .len() as u64;
    }
    let scan_ms = start.elapsed().as_secs_f64() * 1e3 / SCANS as f64;

    // Secondary-delete granularity: fraction of pages droppable when
    // erasing the oldest 30% by timestamp.
    db.range_delete_secondary(0, POPULATION * 3 / 10).unwrap();
    use std::sync::atomic::Ordering::Relaxed;
    let pages_before = db.stats().pages_dropped.load(Relaxed);
    db.compact_all().unwrap();
    let dropped = db.stats().pages_dropped.load(Relaxed) - pages_before;

    vec![
        h.to_string(),
        f3(lookup_us),
        f2(scan_ms),
        grouped(rows / SCANS),
        grouped(dropped),
    ]
}

fn main() {
    let rows: Vec<Vec<String>> = [1usize, 2, 4, 8, 16, 32].iter().map(|&h| run(h)).collect();
    print_table(
        "E6: KiWi tile granularity h — read cost vs delete granularity",
        &[
            "h",
            "lookup us/op",
            "scan ms/op",
            "rows/scan",
            "pages dropped on erase",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: lookup latency grows gently with h (Bloom filters absorb\n\
         most of the extra pages); scans degrade more visibly; droppable pages on a\n\
         secondary delete rise sharply with h. h=1 is the classic layout."
    );
}
