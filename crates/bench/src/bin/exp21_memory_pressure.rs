//! E21 — memory-pressure sweep: adaptive budget vs. static splits.
//!
//! One fixed total byte budget must cover the write buffer, the block
//! cache, AND the pinned per-table filter/tile metadata. A static
//! split is tuned for exactly one workload: a cache-heavy split wastes
//! the buffer on write-heavy traffic (seal storms), a buffer-heavy
//! split starves the cache on read-heavy traffic (miss storms). The
//! adaptive arbiter (`DbOptions::memory_budget_bytes`) starts 50/50
//! and retunes from observed demand — the claim measured here is that
//! one knob tracks the best static split across the whole
//! read/write-mix spectrum and clearly beats the worst one, without
//! being told the mix.
//!
//! Fairness: a naive static split hands the *entire* budget to
//! buffer + cache and then pins table metadata on top, silently
//! running over budget — exactly the accounting hole the arbiter
//! exists to close. To keep every row inside the same real footprint,
//! the harness calibrates the post-load pinned bytes once and statics
//! split only the remainder. Pinned grows beyond that calibration
//! whenever compaction overlaps the table set; the "peak MiB" column
//! shows each config's worst-case real memory, and only the adaptive
//! row is *guaranteed* to stay at the budget line (it re-arbitrates as
//! pinned moves; statics cannot).
//!
//! Every configuration replays the identical seeded op stream, so the
//! digest column must be identical down the table: the split (and the
//! cache itself) may only change *speed*, never answers.

use std::time::Instant;

use acheron::DbOptions;
use acheron_bench::{base_opts, f2, f3, open_db, print_table};
use acheron_workload::{key_bytes, KeyDistribution};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The one budget every configuration must live inside.
const BUDGET: usize = 8 << 20;
/// Loaded keyspace: with [`VAL`]-sized values, about 11 MiB of table
/// bytes — larger than the biggest cache share, so cache pressure is
/// real even for the cache-heaviest split.
const N: u64 = 20_000;
/// Value payload, load and overwrite alike. Large enough that a
/// write-heavy mix produces real flush traffic, not just key churn.
const VAL: usize = 512;
/// Mixed-phase operations.
const OPS: u64 = 60_000;
/// Ops between arbiter/maintenance ticks (the "stats tick").
const TICK_EVERY: u64 = 500;

/// Decorrelate Zipf rank from key order: without this the hot head is
/// one contiguous key run that fits in a handful of pages and every
/// cache size looks equally good. An odd multiplier coprime with `N`
/// spreads hot keys across the whole page set.
fn scramble(rank: u64) -> u64 {
    rank.wrapping_mul(2_654_435_761) % N
}

enum Split {
    /// Fixed `write_buffer_bytes` = pct% of the budget, cache = rest.
    Static(usize),
    /// One `memory_budget_bytes` pool, adaptively split.
    Adaptive,
}

impl Split {
    fn label(&self) -> String {
        match self {
            Split::Static(pct) => format!("static {pct}/{}", 100 - pct),
            Split::Adaptive => "adaptive".into(),
        }
    }

    /// `arbitrated` is what statics may split: the budget minus the
    /// calibrated pinned metadata bytes, so every configuration's real
    /// footprint starts at the same line. The adaptive split takes the
    /// raw budget — subtracting pinned is the arbiter's own job.
    fn opts(&self, arbitrated: usize) -> DbOptions {
        let mut opts = base_opts();
        opts.page_size = 2048;
        match self {
            Split::Static(pct) => {
                opts.write_buffer_bytes = arbitrated * pct / 100;
                opts.block_cache_bytes = arbitrated - opts.write_buffer_bytes;
            }
            Split::Adaptive => {
                opts.memory_budget_bytes = BUDGET;
            }
        }
        opts
    }
}

struct Outcome {
    us_per_op: f64,
    cpu_us_per_op: f64,
    hit_rate: f64,
    digest: u64,
    final_split: String,
    /// Deterministic work: memtable flushes and compaction input MiB.
    /// Sync-mode maintenance makes these exact functions of the op
    /// stream and the split — unlike wall time, they carry no noise.
    flushes: u64,
    compact_mib: f64,
    /// Worst-case real footprint sampled at every tick: write-buffer
    /// allowance + cache capacity + pinned metadata, in MiB.
    peak_mib: f64,
}

fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Process CPU seconds (user + system) from `/proc/self/stat`. The
/// engine runs in sync mode, so all flush/compaction work lands on the
/// calling thread and CPU time captures it exactly — unlike wall time,
/// it is immune to whatever else the machine is doing.
fn cpu_seconds() -> f64 {
    let stat = std::fs::read_to_string("/proc/self/stat").expect("read /proc/self/stat");
    // Fields 14/15 (utime/stime) counted from after the parenthesized
    // comm, which is the only field that may contain spaces.
    let after_comm = &stat[stat.rfind(')').expect("comm") + 2..];
    let mut fields = after_comm.split_whitespace().skip(11);
    let utime: u64 = fields.next().unwrap().parse().unwrap();
    let stime: u64 = fields.next().unwrap().parse().unwrap();
    // Linux's USER_HZ is 100 on every supported configuration.
    (utime + stime) as f64 / 100.0
}

/// Pinned filter/tile-metadata bytes of the freshly loaded, fully
/// compacted table set. Pinned memory is a function of the data, not
/// of the split, so one calibration run prices it for every static
/// configuration. (The adaptive arbiter tracks the *live* value
/// instead — that is the point of the experiment.)
fn calibrate_pinned() -> usize {
    let mut opts = base_opts();
    opts.page_size = 2048;
    let (_fs, db) = open_db(opts);
    for i in 0..N {
        db.put(&key_bytes(i), &[b'v'; VAL]).unwrap();
    }
    db.compact_all().unwrap();
    db.stats_snapshot().pinned_bytes as usize
}

/// Replay the seeded mix against one configuration. The op stream is a
/// pure function of (`read_pct`, seed), independent of the engine's
/// behavior, so every configuration sees byte-identical requests.
fn run(read_pct: u32, split: &Split, arbitrated: usize) -> Outcome {
    let (_fs, db) = open_db(split.opts(arbitrated));
    for i in 0..N {
        db.put(&key_bytes(i), &[b'v'; VAL]).unwrap();
    }
    db.compact_all().unwrap();
    // Baseline tick: the tuner differences cumulative counters, so this
    // keeps the load phase's flush traffic out of the first mixed-phase
    // window.
    db.maintain().unwrap();

    let mut reads = KeyDistribution::zipfian(N, 0.99);
    let mut rng = StdRng::seed_from_u64(0xE21);
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let mut peak_real: u64 = 0;
    let cpu_start = cpu_seconds();
    let start = Instant::now();
    for i in 0..OPS {
        if rng.gen_range(0..100u32) < read_pct {
            let id = scramble(reads.sample(&mut rng));
            match db.get(&key_bytes(id)).unwrap() {
                Some(v) => digest = fnv(fnv(digest, &key_bytes(id)), &v),
                None => digest = fnv(digest, b"miss"),
            }
        } else {
            let id = rng.gen_range(0..N);
            let mut val = [0u8; VAL];
            val[..8].copy_from_slice(&(id ^ i).to_be_bytes());
            db.put(&key_bytes(id), &val).unwrap();
        }
        if (i + 1) % TICK_EVERY == 0 {
            // The deployment's periodic stats tick: maintenance plus —
            // under the adaptive split — one arbiter sample.
            db.maintain().unwrap();
            let s = db.stats_snapshot();
            peak_real =
                peak_real.max(s.memtable_budget_bytes + s.cache_capacity_bytes + s.pinned_bytes);
        }
    }
    let elapsed = start.elapsed();
    let cpu = cpu_seconds() - cpu_start;

    // Fold the final logical state in: any split-dependent answer drift
    // (including cache corruption) breaks the digest column.
    for (k, v) in db.scan(b"", b"\xff").unwrap() {
        digest = fnv(fnv(digest, &k), &v);
    }

    let (hits, misses) = db.cache_stats().unwrap_or((0, 0));
    let hit_rate = if hits + misses == 0 {
        0.0
    } else {
        hits as f64 * 100.0 / (hits + misses) as f64
    };
    let final_split = match db.memory_budget() {
        Some(b) => {
            let mem = b.memtable_share_bytes();
            let pct = mem * 100 / (BUDGET.max(1));
            format!("{}/{} ({} moves)", pct, 100 - pct, b.adjustments())
        }
        None => split.label().replace("static ", ""),
    };
    let stats = db.stats_snapshot();
    Outcome {
        us_per_op: elapsed.as_secs_f64() * 1e6 / OPS as f64,
        cpu_us_per_op: cpu * 1e6 / OPS as f64,
        hit_rate,
        digest,
        final_split,
        flushes: stats.flushes,
        compact_mib: stats.compaction_bytes_in as f64 / (1 << 20) as f64,
        peak_mib: peak_real as f64 / (1 << 20) as f64,
    }
}

/// Median over an odd number of repetitions.
fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn main() {
    const REPS: usize = 5;
    let splits = [
        Split::Static(25),
        Split::Static(50),
        Split::Static(75),
        Split::Adaptive,
    ];
    let pinned0 = calibrate_pinned();
    let arbitrated = BUDGET - pinned0;
    println!(
        "calibration: pinned metadata of the loaded table set = {:.2} MiB; \
         statics split the remaining {:.2} MiB",
        pinned0 as f64 / (1 << 20) as f64,
        arbitrated as f64 / (1 << 20) as f64,
    );
    for read_pct in [95u32, 50, 5] {
        // Repetitions interleave across splits so machine noise lands
        // evenly; wall time is the median, everything else (digest,
        // hit rate, flush and compaction work) is deterministic in
        // sync mode and identical across reps.
        let mut wall: Vec<Vec<f64>> = vec![Vec::new(); splits.len()];
        let mut cpu: Vec<Vec<f64>> = vec![Vec::new(); splits.len()];
        let mut outcomes: Vec<Option<Outcome>> = (0..splits.len()).map(|_| None).collect();
        for _rep in 0..REPS {
            for (i, s) in splits.iter().enumerate() {
                let o = run(read_pct, s, arbitrated);
                wall[i].push(o.us_per_op);
                cpu[i].push(o.cpu_us_per_op);
                if let Some(prev) = &outcomes[i] {
                    assert_eq!(prev.digest, o.digest, "non-deterministic run");
                }
                outcomes[i] = Some(o);
            }
        }
        let outcomes: Vec<Outcome> = outcomes.into_iter().map(Option::unwrap).collect();
        let digest0 = outcomes[0].digest;
        assert!(
            outcomes.iter().all(|o| o.digest == digest0),
            "answers diverged across splits — the cache changed results"
        );
        // Machine noise here is low-frequency (minutes scale), while
        // one repetition's four configs run seconds apart. Relative
        // cost is therefore computed per repetition — each config
        // against the best config OF THAT REP — and the median of
        // those ratios is reported, cancelling drift that absolute
        // medians taken minutes apart would keep.
        let rel: Vec<f64> = (0..splits.len())
            .map(|i| {
                median(
                    (0..REPS)
                        .map(|r| {
                            let best = (0..splits.len())
                                .map(|j| cpu[j][r])
                                .fold(f64::INFINITY, f64::min);
                            cpu[i][r] / best.max(f64::MIN_POSITIVE)
                        })
                        .collect(),
                )
            })
            .collect();
        let wall: Vec<f64> = wall.into_iter().map(median).collect();
        let cpu: Vec<f64> = cpu.into_iter().map(median).collect();
        let rows: Vec<Vec<String>> = splits
            .iter()
            .zip(outcomes.iter().enumerate())
            .map(|(s, (i, o))| {
                vec![
                    s.label(),
                    f3(cpu[i]),
                    f2(rel[i]),
                    f3(wall[i]),
                    f2(o.hit_rate),
                    o.flushes.to_string(),
                    f2(o.compact_mib),
                    f2(o.peak_mib),
                    o.final_split.clone(),
                    format!("{:016x}", o.digest),
                ]
            })
            .collect();
        print_table(
            &format!("E21: {read_pct}% reads, one {} KiB budget", BUDGET >> 10),
            &[
                "split mem/cache",
                "cpu us/op",
                "vs best",
                "wall us/op",
                "hit rate %",
                "flushes",
                "compact MiB",
                "peak MiB",
                "final split",
                "digest",
            ],
            &rows,
        );
    }
}
