//! E16 — Concurrent scaling: embedded get/put throughput vs threads.
//!
//! The hot-path concurrency overhaul (group-commit WAL, lock-free read
//! views, early-exit lookups) claims reads scale with reader count and
//! writers amortize fsyncs across a commit group. This experiment
//! measures aggregate embedded throughput at 1/2/4/8 threads:
//!
//! * `get`: a shared prefilled tree, every thread issuing uniform point
//!   lookups over the same keyspace;
//! * `put`: a fresh tree per run, threads writing disjoint key ranges
//!   with `wal_sync` on, so each committed op implies a durable WAL.
//!
//! The `before` column is the recorded seed measurement from the commit
//! preceding the overhaul (same machine class, same workload constants)
//! — the old path held the exclusive `state` lock across the WAL fsync
//! and the shared lock across SSTable reads, so it could not scale.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use acheron::{Db, DbOptions};
use acheron_bench::{f2, grouped, print_table};
use acheron_vfs::{MemFs, StdFs, TempDir};

const KEYSPACE: u64 = 50_000;
const VALUE_LEN: usize = 64;
const READ_OPS_PER_THREAD: usize = 100_000;
const WRITE_OPS_PER_THREAD: usize = 25_000;
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Seed numbers captured from the pre-overhaul engine (ops/s), same
/// constants, recorded so the before/after comparison survives the old
/// code path's removal. Updated by re-running this binary on the parent
/// commit; see EXPERIMENTS.md E16.
const BEFORE_GET: [u64; 4] = [226_579, 225_118, 215_099, 208_375];
const BEFORE_PUT: [u64; 4] = [473_050, 439_387, 389_166, 220_685];

fn opts() -> DbOptions {
    DbOptions {
        write_buffer_bytes: 1 << 20,
        level1_target_bytes: 4 << 20,
        target_file_bytes: 1 << 20,
        background_threads: 2,
        wal_sync: true,
        ..DbOptions::default()
    }
}

fn key(i: u64) -> Vec<u8> {
    format!("user{i:08}").into_bytes()
}

fn value(i: u64) -> Vec<u8> {
    let mut v = format!("value-{i:08}-").into_bytes();
    while v.len() < VALUE_LEN {
        v.push(b'x');
    }
    v
}

/// xorshift64* — deterministic per-thread key streams without rand.
fn next_rand(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

fn prefill() -> Arc<Db> {
    let db = Arc::new(Db::open(Arc::new(MemFs::new()), "db", opts()).unwrap());
    for i in 0..KEYSPACE {
        db.put(&key(i), &value(i)).unwrap();
    }
    db.wait_idle().unwrap();
    db.flush().unwrap();
    db.compact_all().unwrap();
    db
}

/// Aggregate get throughput with `threads` concurrent readers.
fn bench_gets(db: &Arc<Db>, threads: usize) -> f64 {
    let found = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let db = Arc::clone(db);
            let found = &found;
            s.spawn(move || {
                let mut rng = 0x9e37_79b9_7f4a_7c15u64 ^ ((t as u64 + 1) << 32);
                let mut hits = 0u64;
                for _ in 0..READ_OPS_PER_THREAD {
                    let k = key(next_rand(&mut rng) % KEYSPACE);
                    if db.get(&k).unwrap().is_some() {
                        hits += 1;
                    }
                }
                found.fetch_add(hits, Ordering::Relaxed);
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    let total = threads * READ_OPS_PER_THREAD;
    assert_eq!(
        found.load(Ordering::Relaxed),
        total as u64,
        "prefilled keys must all be found"
    );
    total as f64 / secs
}

/// Aggregate put throughput with `threads` concurrent writers over
/// disjoint key ranges, wal_sync on.
fn bench_puts(threads: usize) -> f64 {
    let db = Arc::new(Db::open(Arc::new(MemFs::new()), "db", opts()).unwrap());
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let db = Arc::clone(&db);
            s.spawn(move || {
                let base = (t * WRITE_OPS_PER_THREAD) as u64;
                for i in 0..WRITE_OPS_PER_THREAD as u64 {
                    db.put(&key(base + i), &value(base + i)).unwrap();
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    let total = threads * WRITE_OPS_PER_THREAD;
    db.wait_idle().unwrap();
    total as f64 / secs
}

/// E16c — read/write non-interference on a filesystem with real fsync
/// latency. A single-CPU host cannot show wall-clock thread scaling,
/// but it *can* show the property scaling derives from: a reader's
/// throughput while a `wal_sync` writer streams commits, relative to
/// the same reader alone. The old engine held the exclusive state lock
/// across every WAL fsync, so a saturating writer blocked readers for
/// roughly the whole fsync duty cycle; the view-based read path never
/// touches a lock the committing writer holds.
fn bench_noninterference() -> (f64, f64, f64) {
    let tmp = TempDir::new("exp16");
    let fs = Arc::new(StdFs::new(true));
    let dir = format!("{}/db", tmp.path_str());
    let db = Arc::new(Db::open(fs, &dir, opts()).unwrap());
    const NI_KEYSPACE: u64 = 10_000;
    const NI_READS: usize = 30_000;
    for i in 0..NI_KEYSPACE {
        db.put(&key(i), &value(i)).unwrap();
    }
    db.wait_idle().unwrap();
    db.flush().unwrap();
    db.compact_all().unwrap();

    let reads = |db: &Arc<Db>| {
        let mut rng = 0xdead_beef_cafe_f00du64;
        let start = Instant::now();
        for _ in 0..NI_READS {
            let k = key(next_rand(&mut rng) % NI_KEYSPACE);
            assert!(db.get(&k).unwrap().is_some());
        }
        NI_READS as f64 / start.elapsed().as_secs_f64()
    };

    let alone = reads(&db);

    let stop = AtomicBool::new(false);
    let wrote = AtomicU64::new(0);
    let mut contended = 0.0;
    std::thread::scope(|s| {
        let writer_db = Arc::clone(&db);
        let stop = &stop;
        let wrote = &wrote;
        s.spawn(move || {
            let mut i = NI_KEYSPACE;
            while !stop.load(Ordering::Acquire) {
                writer_db.put(&key(i), &value(i)).unwrap();
                i += 1;
                wrote.fetch_add(1, Ordering::Relaxed);
            }
        });
        contended = reads(&db);
        stop.store(true, Ordering::Release);
    });
    let write_ops = wrote.load(Ordering::Relaxed) as f64;
    (alone, contended, write_ops)
}

fn main() {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host parallelism: {cpus} CPU(s)");
    let db = prefill();

    let mut get_rows = Vec::new();
    let mut get_now = Vec::new();
    for (i, &t) in THREADS.iter().enumerate() {
        let ops = bench_gets(&db, t);
        get_now.push(ops);
        let scale = ops / get_now[0];
        let before = BEFORE_GET[i];
        let speedup = if before > 0 {
            f2(ops / before as f64)
        } else {
            "-".to_string()
        };
        get_rows.push(vec![
            t.to_string(),
            if before > 0 {
                grouped(before)
            } else {
                "-".to_string()
            },
            grouped(ops as u64),
            format!("{}x", f2(scale)),
            format!("{speedup}x"),
        ]);
    }
    print_table(
        "E16a: embedded get throughput vs reader threads (shared tree)",
        &[
            "threads",
            "before ops/s",
            "after ops/s",
            "scaling",
            "speedup",
        ],
        &get_rows,
    );

    let mut put_rows = Vec::new();
    let mut put_now = Vec::new();
    for (i, &t) in THREADS.iter().enumerate() {
        let ops = bench_puts(t);
        put_now.push(ops);
        let scale = ops / put_now[0];
        let before = BEFORE_PUT[i];
        let speedup = if before > 0 {
            f2(ops / before as f64)
        } else {
            "-".to_string()
        };
        put_rows.push(vec![
            t.to_string(),
            if before > 0 {
                grouped(before)
            } else {
                "-".to_string()
            },
            grouped(ops as u64),
            format!("{}x", f2(scale)),
            format!("{speedup}x"),
        ]);
    }
    print_table(
        "E16b: embedded put throughput vs writer threads (wal_sync, disjoint keys)",
        &[
            "threads",
            "before ops/s",
            "after ops/s",
            "scaling",
            "speedup",
        ],
        &put_rows,
    );

    let (alone, contended, write_ops) = bench_noninterference();
    print_table(
        "E16c: read non-interference vs a wal_sync writer (StdFs, real fsync)",
        &["scenario", "reader ops/s", "ratio"],
        &[
            vec!["reader alone".into(), grouped(alone as u64), "1.00x".into()],
            vec![
                "reader + saturating writer".into(),
                grouped(contended as u64),
                format!("{}x", f2(contended / alone)),
            ],
        ],
    );
    println!(
        "writer committed {} durable ops meanwhile",
        grouped(write_ops as u64)
    );

    let stats = db.stats().snapshot();
    println!();
    for (k, v) in stats.to_pairs() {
        if k.contains("commit") || k.contains("wal") || k.contains("view") {
            println!("{k} = {v}");
        }
    }
    println!(
        "\nExpected shape: on a multi-core host reads scale near-linearly\n\
         once lookups are lock-free (>=1.5x at 4 readers); on any host the\n\
         E16c ratio stays near 1.0 because no reader ever waits behind a\n\
         writer's fsync. Writes gain from group commit amortizing WAL\n\
         syncs across concurrent committers."
    );
    let read_scale_4 = get_now[2] / get_now[0];
    println!("read scaling at 4 threads: {}x", f2(read_scale_4));
}
