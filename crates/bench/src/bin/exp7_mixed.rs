//! E7 — End-to-end throughput on mixed workloads.
//!
//! Claim checked: FADE's persistence guarantee costs only a small
//! end-to-end throughput hit on realistic mixes (its extra compactions
//! are the price), while coming out ahead once the mix reads keys whose
//! history contains deletes.

use acheron_bench::{base_opts, f2, grouped, open_db, print_table};
use acheron_workload::{run_ops, KeyDistribution, OpMix, WorkloadGen, WorkloadSpec};

const OPS: usize = 30_000;
const KEYSPACE: u64 = 20_000;

fn run(mix: OpMix, label: &str, fade: bool, zipf: bool) -> Vec<String> {
    let opts = if fade {
        base_opts().with_fade(20_000)
    } else {
        base_opts()
    };
    let (_fs, db) = open_db(opts);
    let dist = if zipf {
        KeyDistribution::zipfian(KEYSPACE, 0.99)
    } else {
        KeyDistribution::uniform(KEYSPACE)
    };
    let ops = WorkloadGen::new(WorkloadSpec::new(mix, dist)).take(OPS);
    let report = run_ops(&db, &ops).unwrap();
    vec![
        label.to_string(),
        if fade {
            "FADE".into()
        } else {
            "baseline".into()
        },
        grouped(report.ops_per_sec() as u64),
        grouped(report.op_p50_us),
        grouped(report.op_p99_us),
        f2(db.stats().write_amplification()),
        grouped(report.get_hits),
        grouped(db.live_tombstones()),
    ]
}

fn main() {
    let mixes: Vec<(&str, OpMix, bool)> = vec![
        ("insert-only (uniform)", OpMix::insert_only(), false),
        (
            "write-heavy 25% del (uniform)",
            OpMix::write_heavy(25),
            false,
        ),
        (
            "balanced 40/10/40/10 (uniform)",
            OpMix::mixed(40, 10, 40, 10),
            false,
        ),
        (
            "balanced 40/10/40/10 (zipf .99)",
            OpMix::mixed(40, 10, 40, 10),
            true,
        ),
        (
            "read-heavy 15/5/70/10 (uniform)",
            OpMix::mixed(15, 5, 70, 10),
            false,
        ),
    ];
    let mut rows = Vec::new();
    for (label, mix, zipf) in mixes {
        rows.push(run(mix, label, false, zipf));
        rows.push(run(mix, label, true, zipf));
    }
    print_table(
        "E7: mixed-workload throughput, baseline vs FADE",
        &[
            "workload",
            "engine",
            "ops/s",
            "p50 us",
            "p99 us",
            "write amp",
            "get hits",
            "live tombstones",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: on write-dominated mixes FADE trails by a few percent (extra\n\
         compactions); on read-containing mixes the gap closes or reverses as purged\n\
         tombstones make lookups cheaper. Hit counts must match between engines."
    );
}
