//! E15 — The cost of the wire: embedded vs networked throughput.
//!
//! The service layer (PR: network service layer) must not change
//! results — only speed. This experiment drives the *same seeded
//! workload* through three sinks and compares:
//!
//! * `embedded`   — `run_ops(&db, ...)`, direct function calls;
//! * `server`     — one request per round trip over loopback TCP;
//! * `server-pipelined` — the same ops in pipelined bursts, which is
//!   how the protocol is meant to be used (the server batches the
//!   writes of each burst into one atomic `WriteBatch`).
//!
//! The embedded and per-op server runs must produce identical
//! [`acheron_workload::RunReport::check_digest`]s — the equivalence claim backing
//! `tests/server_equivalence.rs`, restated here as a measurement.

use std::sync::Arc;
use std::time::Instant;

use acheron::Db;
use acheron_bench::{base_opts, grouped, print_table};
use acheron_server::{Client, Request, Server, ServerOptions};
use acheron_vfs::MemFs;
use acheron_workload::{run_ops, KeyDistribution, Op, OpMix, WorkloadGen, WorkloadSpec};

const OPS: usize = 20_000;
const KEYSPACE: u64 = 10_000;
const PIPELINE_DEPTH: usize = 64;

fn fresh_db() -> Arc<Db> {
    Arc::new(Db::open(Arc::new(MemFs::new()), "db", base_opts().with_fade(20_000)).unwrap())
}

fn ops_stream() -> Vec<Op> {
    let spec = WorkloadSpec::new(
        OpMix::mixed(40, 10, 40, 10),
        KeyDistribution::uniform(KEYSPACE),
    );
    WorkloadGen::new(spec).take(OPS)
}

fn to_request(op: &Op) -> Request {
    match op {
        Op::Put { key, value, dkey } => Request::Put {
            key: key.clone(),
            value: value.clone(),
            dkey: *dkey,
        },
        Op::Delete { key } => Request::Delete { key: key.clone() },
        Op::Get { key } => Request::Get { key: key.clone() },
        Op::Scan { lo, hi } => Request::Scan {
            lo: lo.clone(),
            hi: hi.clone(),
        },
        Op::RangeDeleteSecondary { lo, hi } => Request::RangeDeleteSecondary { lo: *lo, hi: *hi },
    }
}

fn main() {
    let ops = ops_stream();

    // Embedded: direct calls.
    let db = fresh_db();
    let embedded = run_ops(&*db, &ops).unwrap();

    // Server, one op per round trip, through the same OpSink driver.
    let db = fresh_db();
    let mut server = Server::start(Arc::clone(&db), "127.0.0.1:0", ServerOptions::default())
        .expect("start server");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let remote = run_ops(&mut client, &ops).unwrap();
    server.shutdown();

    // Server, pipelined in bursts of PIPELINE_DEPTH.
    let db = fresh_db();
    let mut server = Server::start(Arc::clone(&db), "127.0.0.1:0", ServerOptions::default())
        .expect("start server");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let requests: Vec<Request> = ops.iter().map(to_request).collect();
    let start = Instant::now();
    let mut responses = 0usize;
    for burst in requests.chunks(PIPELINE_DEPTH) {
        responses += client.pipeline(burst).expect("pipeline burst").len();
    }
    let pipelined_secs = start.elapsed().as_secs_f64();
    assert_eq!(responses, ops.len());
    server.shutdown();

    assert_eq!(
        embedded.check_digest, remote.check_digest,
        "embedded and server runs must be result-identical"
    );

    let rows = vec![
        vec![
            "embedded".to_string(),
            grouped(embedded.ops_per_sec() as u64),
            grouped(embedded.op_p50_us),
            grouped(embedded.op_p99_us),
            format!("{:08x}", embedded.check_digest),
        ],
        vec![
            "server (per-op)".to_string(),
            grouped(remote.ops_per_sec() as u64),
            grouped(remote.op_p50_us),
            grouped(remote.op_p99_us),
            format!("{:08x}", remote.check_digest),
        ],
        vec![
            format!("server (pipeline={PIPELINE_DEPTH})"),
            grouped((ops.len() as f64 / pipelined_secs) as u64),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
        ],
    ];
    print_table(
        "E15: embedded vs networked throughput, same seeded workload",
        &["sink", "ops/s", "p50 us", "p99 us", "digest"],
        &rows,
    );
    let per_op_ratio = remote.ops_per_sec() / embedded.ops_per_sec().max(f64::MIN_POSITIVE);
    let pipelined_ratio =
        (ops.len() as f64 / pipelined_secs) / embedded.ops_per_sec().max(f64::MIN_POSITIVE);
    println!(
        "\nserver/embedded throughput: {per_op_ratio:.2}x per-op, {pipelined_ratio:.2}x pipelined"
    );
    println!(
        "Expected shape: per-op round trips pay a large latency tax; pipelining\n\
         recovers most of it (amortized syscalls + engine-side group commit).\n\
         Digests must match — the wire changes the medium, never the answer."
    );
}
