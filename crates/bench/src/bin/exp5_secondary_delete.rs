//! E5 — Cost of a secondary range delete: KiWi vs. the alternatives.
//!
//! Claim checked (Lethe abstract): KiWi supports "efficient range
//! deletes on a secondary delete key by dropping entire data pages ...
//! without employing a costly full tree merge".
//!
//! Three strategies erase the oldest `X%` of a timestamp-keyed dataset:
//!
//! * **full-tree rewrite** — the delete-blind answer: read and rewrite
//!   every file, filtering as you go (modeled as `compact_all` on a
//!   classic-layout tree holding a range tombstone with h = 1, where no
//!   page is droppable);
//! * **KiWi h = 4 / h = 16** — the same range tombstone on a woven tree:
//!   covered pages are dropped unread during the reclaim compactions;
//! * **point deletes** — issue a tombstone per matching key (what an
//!   application without range-delete support must do).

use acheron_bench::{base_opts, f2, grouped, open_db, print_table};
use acheron_vfs::Vfs;
use acheron_workload::key_bytes;

const POPULATION: u64 = 20_000;
const ERASE_PCT: u64 = 30;

fn load(db: &acheron::Db) {
    // dkey = insertion index: a timestamp, as in the paper's model.
    for i in 0..POPULATION {
        db.put_with_dkey(&key_bytes(i % 7_919 * 7 + i / 7_919), &[b'v'; 64], i)
            .unwrap();
    }
    db.compact_all().unwrap();
}

fn run_range_delete(h: usize) -> Vec<String> {
    let opts = base_opts().with_tile(h);
    let (fs, db) = open_db(opts);
    load(&db);
    let before = fs.io_stats().snapshot();
    let start = std::time::Instant::now();
    db.range_delete_secondary(0, POPULATION * ERASE_PCT / 100 - 1)
        .unwrap();
    db.compact_all().unwrap();
    let elapsed = start.elapsed().as_secs_f64();
    let delta = fs.io_stats().snapshot() - before;
    use std::sync::atomic::Ordering::Relaxed;
    vec![
        format!(
            "range delete, h={h}{}",
            if h == 1 { " (classic)" } else { " (KiWi)" }
        ),
        grouped(delta.bytes_read),
        grouped(delta.bytes_written),
        grouped(db.stats().pages_dropped.load(Relaxed)),
        grouped(db.stats().entries_range_purged.load(Relaxed)),
        f2(elapsed * 1000.0),
    ]
}

fn run_point_deletes() -> Vec<String> {
    let (fs, db) = open_db(base_opts());
    load(&db);
    let before = fs.io_stats().snapshot();
    let start = std::time::Instant::now();
    // The application must know which keys match; we replay the insert
    // pattern to find them (free for the benchmark's purposes).
    for i in 0..POPULATION * ERASE_PCT / 100 {
        db.delete(&key_bytes(i % 7_919 * 7 + i / 7_919)).unwrap();
    }
    db.compact_all().unwrap();
    let elapsed = start.elapsed().as_secs_f64();
    let delta = fs.io_stats().snapshot() - before;
    vec![
        "point deletes".into(),
        grouped(delta.bytes_read),
        grouped(delta.bytes_written),
        "0".into(),
        "0".into(),
        f2(elapsed * 1000.0),
    ]
}

fn main() {
    let rows = vec![
        run_point_deletes(),
        run_range_delete(1),
        run_range_delete(4),
        run_range_delete(16),
    ];
    print_table(
        &format!(
            "E5: erase oldest {ERASE_PCT}% by timestamp ({} entries)",
            grouped(POPULATION)
        ),
        &[
            "strategy",
            "bytes read",
            "bytes written",
            "pages dropped",
            "entries purged",
            "ms",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: point deletes cost the most (they re-ingest tombstones);\n\
         classic layout (h=1) rewrites everything it reads; KiWi reads less as h grows\n\
         because covered pages are dropped without being read."
    );
}
