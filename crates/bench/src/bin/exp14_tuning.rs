//! E14 (extension) — navigating the compaction design space.
//!
//! The group's PVLDB'21 compaction-design-space paper argues the size
//! ratio `T` and layout jointly set the write/read tradeoff. This sweep
//! shows the engine moving through that space: leveling vs tiering vs
//! lazy leveling at several `T`, reporting write amplification, files
//! touched per lookup, and throughput for one mixed workload.

use std::time::Instant;

use acheron::{CompactionLayout, DbOptions};
use acheron_bench::{base_opts, f2, f3, grouped, open_db, print_table};
use acheron_workload::key_bytes;

const N: u64 = 25_000;
const LOOKUPS: u64 = 10_000;

fn run(layout: CompactionLayout, t: u64) -> Vec<String> {
    let opts = DbOptions {
        layout,
        size_ratio: t,
        ..base_opts()
    };
    let (_fs, db) = open_db(opts);
    let start = Instant::now();
    for i in 0..N {
        // Scrambled inserts with periodic updates: a write-heavy mix.
        let id = (i * 48_271) % N;
        db.put(&key_bytes(id), &[b'v'; 64]).unwrap();
    }
    let ingest_secs = start.elapsed().as_secs_f64();

    let level_info = db.level_summary();
    let runs: usize = level_info.iter().map(|l| l.runs).sum();

    let start = Instant::now();
    for q in 0..LOOKUPS {
        let id = (q * 69_621) % N;
        assert!(db.get(&key_bytes(id)).unwrap().is_some());
    }
    let lookup_us = start.elapsed().as_secs_f64() * 1e6 / LOOKUPS as f64;

    vec![
        format!("{layout:?}"),
        t.to_string(),
        f2(db.stats().write_amplification()),
        runs.to_string(),
        f3(lookup_us),
        grouped((N as f64 / ingest_secs) as u64),
    ]
}

fn main() {
    let mut rows = Vec::new();
    for layout in [
        CompactionLayout::Leveling,
        CompactionLayout::Tiering,
        CompactionLayout::LazyLeveling,
    ] {
        for t in [2u64, 4, 8] {
            rows.push(run(layout, t));
        }
    }
    print_table(
        "E14: layout x size-ratio sweep (write-heavy scrambled inserts)",
        &[
            "layout",
            "T",
            "write amp",
            "total runs",
            "lookup us",
            "inserts/s",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: tiering's write amplification falls as T grows (fewer,\n\
         bigger merges) while its run count — and hence lookup cost — rises;\n\
         leveling shows the opposite trend; lazy leveling sits between, keeping\n\
         the bottom level read-friendly."
    );
}
