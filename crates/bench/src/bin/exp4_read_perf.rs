//! E4 — Point-lookup performance after delete-heavy history.
//!
//! Claim checked (Lethe abstract): purging superfluous entries raises
//! read throughput by **1.17x–1.4x**: the baseline's lookups wade
//! through live tombstones and the invalidated versions beneath them,
//! touching more pages per query.

use std::time::Instant;

use acheron::LatencyHistogram;
use acheron_bench::{base_opts, f2, f3, grouped, open_db, print_table, settle};
use acheron_workload::key_bytes;

const POPULATION: u64 = 12_000;
const DELETE_EVERY: u64 = 3; // delete every 3rd key
const LOOKUPS: u64 = 30_000;

fn run(fade: bool) -> Vec<String> {
    let opts = if fade {
        base_opts().with_fade(10_000)
    } else {
        base_opts()
    };
    let (_fs, db) = open_db(opts);
    for i in 0..POPULATION {
        db.put(&key_bytes(i), &[b'v'; 64]).unwrap();
        // Superfluous updates the baseline will retain across levels.
        if i % 2 == 0 {
            db.put(&key_bytes(i), &[b'w'; 64]).unwrap();
        }
    }
    for i in 0..POPULATION {
        if i % DELETE_EVERY == 0 {
            db.delete(&key_bytes(i)).unwrap();
        }
    }
    db.flush().unwrap();
    settle(&db, 64_000, 300);

    let before_reads = db.vfs().io_stats().snapshot();
    let latency = LatencyHistogram::default();
    let start = Instant::now();
    let mut hits = 0u64;
    for q in 0..LOOKUPS {
        // Deterministic pseudo-random probe sequence over live+deleted
        // keys and some misses.
        let id = (q * 2_654_435_761) % (POPULATION + POPULATION / 4);
        let lookup_start = Instant::now();
        if db.get(&key_bytes(id)).unwrap().is_some() {
            hits += 1;
        }
        latency.record(lookup_start.elapsed().as_micros() as u64);
    }
    let elapsed = start.elapsed().as_secs_f64();
    let read_delta = db.vfs().io_stats().snapshot() - before_reads;
    vec![
        if fade {
            "FADE".into()
        } else {
            "baseline".into()
        },
        grouped((LOOKUPS as f64 / elapsed) as u64),
        f3(elapsed * 1e9 / LOOKUPS as f64 / 1000.0), // µs per lookup
        grouped(latency.percentile(50.0)),
        grouped(latency.percentile(99.0)),
        grouped(hits),
        grouped(db.live_tombstones()),
        f2(read_delta.bytes_read as f64 / LOOKUPS as f64),
        f2(read_delta.read_ops as f64 / LOOKUPS as f64),
    ]
}

fn main() {
    let base = run(false);
    let fade = run(true);
    let speedup = {
        let b: f64 = base[1].replace(',', "").parse().unwrap();
        let f: f64 = fade[1].replace(',', "").parse().unwrap();
        f / b
    };
    print_table(
        "E4: point lookups after delete-heavy history",
        &[
            "engine",
            "lookups/s",
            "us/lookup",
            "p50 us",
            "p99 us",
            "hits",
            "live tombstones",
            "bytes read/op",
            "page reads/op",
        ],
        &[base, fade],
    );
    println!("\nFADE speedup over baseline: {speedup:.2}x");
    println!(
        "Expected shape: FADE reads fewer bytes/pages per lookup and holds fewer live\n\
         tombstones, yielding a modest throughput edge (Lethe: 1.17x-1.4x)."
    );
}
