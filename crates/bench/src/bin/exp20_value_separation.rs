//! E20 — Key-value separation: a value log with delete-aware GC.
//!
//! Claims checked, per value size from 64 B to 16 KiB:
//!
//! 1. **Compaction write bytes shrink.** With separation on, compaction
//!    moves 20-byte pointers instead of payloads, so its write volume
//!    stops scaling with value size; inline compaction rewrites every
//!    byte at every level move.
//! 2. **The answer never changes.** The same seeded workload run with
//!    separation on and off leaves byte-identical contents (full-scan
//!    digest equality) — separation is a layout decision, not a
//!    semantic one.
//! 3. **The FADE deadline covers the log.** After a delete-heavy
//!    workload ages past `D_th`, every dead vlog extent has been
//!    reclaimed: the oldest-dead-extent age never exceeds `D_th` at any
//!    observation point and the dead-byte gauge drains to zero.

use std::sync::atomic::Ordering::Relaxed;

use acheron::DbOptions;
use acheron_bench::{base_opts, f2, grouped, open_db, print_table};

const KEYS: u64 = 1_024;
const OVERWRITE_ROUNDS: u8 = 3;
const VALUE_SIZES: [usize; 5] = [64, 256, 1_024, 4_096, 16_384];
const SEPARATION_THRESHOLD: usize = 128;
const D_TH: u64 = 4_000;

fn key(i: u64) -> Vec<u8> {
    format!("k:{i:05}").into_bytes()
}

/// Deterministic value: the payload depends on (key, round) so the
/// on/off runs write identical bytes and overwrites really change them.
fn value(i: u64, round: u8, size: usize) -> Vec<u8> {
    let mut v = vec![b'v'; size];
    v[..8].copy_from_slice(&i.to_le_bytes());
    v[8] = round;
    v
}

fn opts(separated: bool) -> DbOptions {
    let mut o = base_opts();
    if separated {
        o = o.with_value_separation(SEPARATION_THRESHOLD);
        o.vlog_segment_bytes = 256 << 10;
    }
    o
}

struct RunOut {
    digest: u64,
    rows: u64,
    compaction_bytes: u64,
    vlog_appends: u64,
}

fn run(size: usize, separated: bool) -> RunOut {
    let (_fs, db) = open_db(opts(separated));
    for round in 0..OVERWRITE_ROUNDS {
        for i in 0..KEYS {
            db.put(&key(i), &value(i, round, size)).unwrap();
        }
        db.flush().unwrap();
    }
    db.compact_all().unwrap();

    // FNV-1a over every surviving (key, value) pair.
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let mut rows = 0u64;
    for (k, v) in db.scan(b"", &[0xff; 16]).unwrap() {
        for b in k.iter().chain(v.iter()) {
            digest = (digest ^ u64::from(*b)).wrapping_mul(0x100_0000_01b3);
        }
        rows += 1;
    }
    let stats = db.stats();
    RunOut {
        digest,
        rows,
        compaction_bytes: stats.compaction_bytes_out.load(Relaxed),
        vlog_appends: stats.vlog_appends.load(Relaxed),
    }
}

/// Delete-heavy aged run: deletes kill separated values, compaction
/// purges the pointers (dead extents stamped with the tombstone tick),
/// and the deadline rule must drain every extent within `D_th`. Returns
/// the maximum dead-extent age observed while settling and the final
/// dead-byte gauge.
fn deadline_run() -> (u64, u64) {
    let mut o = opts(true).with_fade(D_TH);
    // Only the deadline may drive GC — a drained log proves the rule.
    o.vlog_gc_dead_ratio_percent = 0;
    let (_fs, db) = open_db(o);
    for i in 0..600u64 {
        db.put(&key(i), &value(i, 0, 1_024)).unwrap();
    }
    db.flush().unwrap();
    for i in 0..300u64 {
        db.delete(&key(i)).unwrap();
    }
    db.compact_all().unwrap();
    assert!(
        db.tombstone_gauges().vlog_dead_bytes > 0,
        "purged pointers must surface as dead vlog bytes"
    );
    let mut now = 0u64;
    let mut max_age = 0u64;
    let step = (D_TH / 32).max(1);
    while now < 3 * D_TH {
        db.advance_clock(step);
        now += step;
        db.maintain().unwrap();
        if let Some(t0) = db.tombstone_gauges().vlog_oldest_dead_tick {
            max_age = max_age.max(now.saturating_sub(t0));
        }
    }
    (max_age, db.tombstone_gauges().vlog_dead_bytes)
}

fn main() {
    let mut rows = Vec::new();
    for size in VALUE_SIZES {
        let inline = run(size, false);
        let sep = run(size, true);
        assert_eq!(
            inline.digest, sep.digest,
            "separation changed the answer at value size {size}"
        );
        assert_eq!(inline.rows, sep.rows);
        if size >= SEPARATION_THRESHOLD {
            assert!(sep.vlog_appends > 0, "values of {size} B must separate");
            assert!(
                sep.compaction_bytes < inline.compaction_bytes,
                "separation must cut compaction writes at {size} B \
                 ({} vs {})",
                sep.compaction_bytes,
                inline.compaction_bytes
            );
        }
        rows.push(vec![
            grouped(size as u64),
            grouped(inline.compaction_bytes),
            grouped(sep.compaction_bytes),
            f2(inline.compaction_bytes as f64 / sep.compaction_bytes.max(1) as f64),
            grouped(sep.vlog_appends),
            "yes".into(),
        ]);
    }
    print_table(
        &format!(
            "E20: compaction write bytes, inline vs separated \
             ({} keys x {} overwrite rounds, threshold {} B)",
            grouped(KEYS),
            OVERWRITE_ROUNDS,
            SEPARATION_THRESHOLD
        ),
        &[
            "value bytes",
            "inline compaction bytes",
            "separated compaction bytes",
            "ratio",
            "vlog appends",
            "digest equal",
        ],
        &rows,
    );

    let (max_age, final_dead) = deadline_run();
    assert!(
        max_age <= D_TH,
        "dead vlog extent aged {max_age} > D_th {D_TH}"
    );
    assert_eq!(final_dead, 0, "dead extents must drain to zero");
    println!(
        "\nDeadline check: delete-heavy aged workload, D_th = {D_TH}. Max observed\n\
         dead-extent age {max_age} ticks (bound holds), final dead bytes {final_dead}.\n\
         Expected shape: compaction bytes stop scaling with value size once values\n\
         separate (the ratio grows with value size); below the threshold the two\n\
         configurations coincide."
    );
}
