//! E12 (extension) — block cache ablation.
//!
//! Not a paper claim, but a production-relevant knob the engine ships
//! with: how page-cache capacity translates into hit rate and lookup
//! latency under a Zipfian read workload.

use std::time::Instant;

use acheron_bench::{base_opts, f2, f3, grouped, open_db, print_table};
use acheron_workload::{key_bytes, KeyDistribution};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: u64 = 30_000;
const READS: u64 = 60_000;

fn run(cache_bytes: usize) -> Vec<String> {
    let mut opts = base_opts();
    opts.block_cache_bytes = cache_bytes;
    let (_fs, db) = open_db(opts);
    for i in 0..N {
        db.put(&key_bytes(i), &[b'v'; 64]).unwrap();
    }
    db.compact_all().unwrap();

    let mut dist = KeyDistribution::zipfian(N, 0.99);
    let mut rng = StdRng::seed_from_u64(99);
    let start = Instant::now();
    for _ in 0..READS {
        let id = dist.sample(&mut rng);
        db.get(&key_bytes(id)).unwrap();
    }
    let us = start.elapsed().as_secs_f64() * 1e6 / READS as f64;
    let (hits, misses) = db.cache_stats().unwrap_or((0, 0));
    let hit_rate = if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    };
    vec![
        if cache_bytes == 0 {
            "off".into()
        } else {
            grouped(cache_bytes as u64)
        },
        f3(us),
        f2(hit_rate * 100.0),
        grouped(hits),
        grouped(misses),
    ]
}

fn main() {
    let rows: Vec<Vec<String>> = [0usize, 64 << 10, 256 << 10, 1 << 20, 8 << 20]
        .iter()
        .map(|&c| run(c))
        .collect();
    print_table(
        "E12: block cache ablation (zipf 0.99 reads over 30k keys)",
        &["cache bytes", "lookup us", "hit rate %", "hits", "misses"],
        &rows,
    );
    println!(
        "\nExpected shape: hit rate climbs with capacity (the Zipfian head fits\n\
         early), and lookup latency drops correspondingly; a cache larger than the\n\
         working set saturates near 100%."
    );
}
