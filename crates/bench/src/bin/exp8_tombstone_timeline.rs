//! E8 — Live tombstone population over time (the demo's headline view).
//!
//! The Acheron demonstration's central visual: as a delete-containing
//! workload runs, the number of live (unpersisted) tombstones in a
//! vanilla LSM climbs without bound, while under FADE it oscillates
//! below the ceiling its threshold implies.

use acheron_bench::{base_opts, grouped, open_db, print_table};
use acheron_workload::{run_ops, KeyDistribution, OpMix, WorkloadGen, WorkloadSpec};

const TOTAL_OPS: usize = 60_000;
const SAMPLE_EVERY: usize = 5_000;

fn timeline(fade: bool) -> Vec<(usize, u64, u64)> {
    let opts = if fade {
        base_opts().with_fade(10_000)
    } else {
        base_opts()
    };
    let (_fs, db) = open_db(opts);
    let spec = WorkloadSpec::new(OpMix::write_heavy(30), KeyDistribution::uniform(50_000));
    let mut gen = WorkloadGen::new(spec);
    let mut samples = Vec::new();
    let mut done = 0;
    while done < TOTAL_OPS {
        let ops = gen.take(SAMPLE_EVERY);
        run_ops(&db, &ops).unwrap();
        done += SAMPLE_EVERY;
        samples.push((
            done,
            db.live_tombstones(),
            db.oldest_live_tombstone_age().unwrap_or(0),
        ));
    }
    samples
}

fn main() {
    let base = timeline(false);
    let fade = timeline(true);
    let rows: Vec<Vec<String>> = base
        .iter()
        .zip(fade.iter())
        .map(|((ops, bt, ba), (_, ft, fa))| {
            vec![
                grouped(*ops as u64),
                grouped(*bt),
                grouped(*ba),
                grouped(*ft),
                grouped(*fa),
            ]
        })
        .collect();
    print_table(
        "E8: live tombstones over time (30% deletes; FADE D_th=10,000)",
        &[
            "ops",
            "baseline tombstones",
            "baseline oldest age",
            "FADE tombstones",
            "FADE oldest age",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: the baseline's tombstone count and oldest-tombstone age grow\n\
         with the workload; FADE's oldest age stays below D_th and its count plateaus."
    );
}
