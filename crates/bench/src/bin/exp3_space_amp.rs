//! E3 — Space amplification vs. delete fraction.
//!
//! Claim checked (Lethe abstract): timely tombstone persistence lowers
//! space amplification by **2.1x–9.8x** on delete-heavy workloads,
//! because the baseline retains both the tombstones and the invalidated
//! versions they logically removed.
//!
//! Space amplification here is `table bytes / live logical bytes`, with
//! live logical bytes computed from a full scan (ground truth).

use acheron_bench::{base_opts, f2, open_db, print_table, settle};
use acheron_workload::key_bytes;

const POPULATION: u64 = 10_000;
const VALUE: usize = 64;

fn run(delete_pct: u64, fade: bool) -> (f64, u64) {
    let opts = if fade {
        base_opts().with_fade(8_000)
    } else {
        base_opts()
    };
    let (_fs, db) = open_db(opts);
    for i in 0..POPULATION {
        db.put(&key_bytes(i), &[b'v'; VALUE]).unwrap();
    }
    // Delete a stride so tombstones spread over every file.
    let deletes = POPULATION * delete_pct / 100;
    if let Some(stride) = POPULATION.checked_div(deletes) {
        let stride = stride.max(1);
        for i in 0..deletes {
            db.delete(&key_bytes(i * stride)).unwrap();
        }
    }
    db.flush().unwrap();
    // A cooling-off period lets FADE act; the baseline gets the same
    // opportunities (maintain is trigger-driven for both).
    settle(&db, 50_000, 250);
    let live_rows = db.scan(&key_bytes(0), &key_bytes(POPULATION)).unwrap();
    let logical: u64 = live_rows
        .iter()
        .map(|(k, v)| (k.len() + v.len()) as u64)
        .sum();
    let physical = db.table_bytes();
    let amp = if logical == 0 {
        f64::NAN
    } else {
        physical as f64 / logical as f64
    };
    (amp, db.live_tombstones())
}

fn main() {
    let mut rows = Vec::new();
    for delete_pct in [5u64, 15, 25, 35, 50, 70, 90] {
        let (base_amp, base_ts) = run(delete_pct, false);
        let (fade_amp, fade_ts) = run(delete_pct, true);
        rows.push(vec![
            format!("{delete_pct}%"),
            f2(base_amp),
            f2(fade_amp),
            f2(base_amp / fade_amp),
            base_ts.to_string(),
            fade_ts.to_string(),
        ]);
    }
    print_table(
        "E3: space amplification vs delete fraction",
        &[
            "deletes",
            "baseline amp",
            "FADE amp",
            "improvement",
            "baseline tombstones",
            "FADE tombstones",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: improvement grows with the delete fraction (more dead bytes\n\
         for FADE to reclaim); Lethe reports 2.1x-9.8x across its sweep."
    );
}
