//! E9 — Ablation: FADE's saturation-time file-picking policy.
//!
//! When a level saturates, which file should move? The ablation pits the
//! write-optimized min-overlap pick against the delete-aware picks
//! (tombstone density, oldest tombstone) and a round-robin strawman,
//! all with the same TTL trigger providing the hard bound.

use acheron::{FadeOptions, FilePickPolicy, TtlAllocation};
use acheron_bench::{base_opts, f2, grouped, open_db, print_table};
use acheron_workload::{run_ops, KeyDistribution, OpMix, WorkloadGen, WorkloadSpec};

const OPS: usize = 40_000;
const D_TH: u64 = 40_000;

fn run(policy: FilePickPolicy, label: &str) -> Vec<String> {
    let mut opts = base_opts();
    opts.fade = Some(FadeOptions {
        delete_persistence_threshold: D_TH,
        ttl_allocation: TtlAllocation::Exponential,
        saturation_pick: policy,
    });
    let (_fs, db) = open_db(opts);
    let spec = WorkloadSpec::new(OpMix::write_heavy(20), KeyDistribution::uniform(30_000));
    let ops = WorkloadGen::new(spec).take(OPS);
    run_ops(&db, &ops).unwrap();
    db.maintain().unwrap();
    use std::sync::atomic::Ordering::Relaxed;
    let s = db.stats();
    vec![
        label.to_string(),
        f2(s.write_amplification()),
        grouped(s.persistence_latency.quantile(0.5)),
        grouped(s.persistence_latency.quantile(0.99)),
        grouped(db.live_tombstones()),
        grouped(s.ttl_compactions.load(Relaxed)),
        grouped(s.persistence_violations.load(Relaxed)),
    ]
}

fn main() {
    let rows = vec![
        run(FilePickPolicy::MinOverlap, "min-overlap (write-optimized)"),
        run(FilePickPolicy::TombstoneDensity, "tombstone density"),
        run(FilePickPolicy::OldestTombstone, "oldest tombstone"),
        run(FilePickPolicy::RoundRobin, "round-robin"),
    ];
    print_table(
        &format!("E9: FADE file-pick ablation (D_th={D_TH}, 20% deletes)"),
        &[
            "policy",
            "write amp",
            "p50 persist",
            "p99 persist",
            "live tombstones",
            "ttl compactions",
            "violations",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: all policies respect the bound (0 violations). Delete-aware\n\
         picks persist tombstones earlier (lower p50) and rely less on emergency TTL\n\
         compactions; min-overlap wins on write amplification."
    );
}
