//! E11 (extension) — Bloom filter budget ablation.
//!
//! The per-page filters are what keep KiWi's point lookups near-flat in
//! `h` (E6). This ablation quantifies the knob: false-positive rate,
//! filter footprint, and negative-lookup cost as bits-per-key varies.

use std::time::Instant;

use acheron_bench::{f2, f3, grouped, print_table};
use acheron_sstable::{Table, TableBuilder, TableOptions};
use acheron_types::Entry;
use acheron_vfs::{MemFs, Vfs};
use std::sync::Arc;

const N: u64 = 50_000;
const PROBES: u64 = 50_000;

fn run(bits_per_key: usize) -> Vec<String> {
    let fs = Arc::new(MemFs::new());
    let opts = TableOptions {
        bloom_bits_per_key: bits_per_key,
        pages_per_tile: 8,
        ..Default::default()
    };
    let mut b = TableBuilder::new(fs.create("t.sst").unwrap(), opts).unwrap();
    for i in 0..N {
        b.add(&Entry::put(
            format!("key{i:012}").into_bytes(),
            vec![b'v'; 32],
            i + 1,
            i % 1024,
        ))
        .unwrap();
    }
    b.finish().unwrap();
    let table = Table::open(fs.open("t.sst").unwrap()).unwrap();

    use std::sync::atomic::Ordering::Relaxed;
    let start = Instant::now();
    for q in 0..PROBES {
        // Absent keys inside the fence range.
        let key = format!("key{:012}x", (q * 48_271) % N);
        assert!(table
            .get(key.as_bytes(), u64::MAX >> 8, &[])
            .unwrap()
            .is_none());
    }
    let negative_us = start.elapsed().as_secs_f64() * 1e6 / PROBES as f64;
    let pages_read = table.counters.pages_read.load(Relaxed);
    // Effective false-positive rate = page reads that the filter failed
    // to prevent, per probe (each probe consults up to h pages).
    let fpr = pages_read as f64 / PROBES as f64;

    let start = Instant::now();
    for q in 0..PROBES / 5 {
        let key = format!("key{:012}", (q * 48_271) % N);
        assert!(table
            .get(key.as_bytes(), u64::MAX >> 8, &[])
            .unwrap()
            .is_some());
    }
    let positive_us = start.elapsed().as_secs_f64() * 1e6 / (PROBES / 5) as f64;

    // Filter footprint: bits/key * keys.
    let filter_bytes = if bits_per_key == 0 {
        0
    } else {
        (N as usize * bits_per_key) / 8
    };
    vec![
        bits_per_key.to_string(),
        f3(fpr),
        f3(negative_us),
        f3(positive_us),
        grouped(filter_bytes as u64),
        f2(filter_bytes as f64 / (N as f64 * 48.0) * 100.0),
    ]
}

fn main() {
    let rows: Vec<Vec<String>> = [0usize, 2, 5, 10, 16].iter().map(|&b| run(b)).collect();
    print_table(
        "E11: Bloom bits-per-key ablation (h=8 KiWi table, negative probes)",
        &[
            "bits/key",
            "page reads/neg probe",
            "neg lookup us",
            "pos lookup us",
            "filter bytes",
            "% of data",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: page reads per negative probe collapse from ~1+ (no filter,\n\
         every fence-matching page searched) toward ~0 as bits/key grow, with\n\
         diminishing returns past ~10 bits; positive lookups are filter-insensitive."
    );
}
