//! E19 — Prefix erasure over the sort key: one range tombstone vs. N
//! point deletes.
//!
//! Claim checked: a sort-key range delete (`range_delete_keys`) erases
//! an arbitrary contiguous span with **one** O(1) write — one WAL
//! record, one buffered tombstone — where the application-level
//! alternative issues one point delete per covered key, paying N WAL
//! records and re-ingesting N tombstones through the memtable, flush,
//! and compaction pipeline. The read-side answer is identical either
//! way (covered keys read as deleted immediately); only the write cost
//! differs.
//!
//! For each erase width N the table reports the number of delete
//! writes issued, the bytes written while issuing them (WAL + any
//! flushes/compactions they force), the bytes written by the reclaim
//! compaction that follows, and wall time for the erase step.

use acheron_bench::{base_opts, f2, grouped, open_db, print_table};
use acheron_vfs::Vfs;

const POPULATION: u64 = 20_000;
const WIDTHS: [u64; 3] = [100, 1_000, 10_000];

fn key(i: u64) -> Vec<u8> {
    format!("u:{i:05}").into_bytes()
}

fn load(db: &acheron::Db) {
    for i in 0..POPULATION {
        db.put(&key(i), &[b'v'; 64]).unwrap();
    }
    db.compact_all().unwrap();
}

/// The first `n` keys must read as deleted and the rest must survive.
fn check_erased(db: &acheron::Db, n: u64) {
    for probe in [0, n / 2, n - 1] {
        assert_eq!(db.get(&key(probe)).unwrap(), None, "key {probe} visible");
    }
    assert!(db.get(&key(n)).unwrap().is_some(), "key {n} lost");
    assert!(db.get(&key(POPULATION - 1)).unwrap().is_some());
}

fn run(n: u64, range: bool) -> Vec<String> {
    let (fs, db) = open_db(base_opts());
    load(&db);
    use std::sync::atomic::Ordering::Relaxed;
    let before = fs.io_stats().snapshot();
    let start = std::time::Instant::now();
    if range {
        // Inclusive span covering exactly keys 0..n.
        db.range_delete_keys(&key(0), &key(n - 1)).unwrap();
    } else {
        for i in 0..n {
            db.delete(&key(i)).unwrap();
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    let erase_delta = fs.io_stats().snapshot() - before;
    check_erased(&db, n);

    let before_reclaim = fs.io_stats().snapshot();
    db.compact_all().unwrap();
    let reclaim_delta = fs.io_stats().snapshot() - before_reclaim;
    check_erased(&db, n);

    let stats = db.stats();
    let writes = stats.deletes.load(Relaxed) + stats.sort_range_deletes.load(Relaxed);
    vec![
        if range {
            "range tombstone".into()
        } else {
            "point deletes".into()
        },
        grouped(n),
        grouped(writes),
        grouped(erase_delta.bytes_written),
        grouped(reclaim_delta.bytes_written),
        f2(elapsed * 1000.0),
    ]
}

fn main() {
    let mut rows = Vec::new();
    for n in WIDTHS {
        rows.push(run(n, false));
        rows.push(run(n, true));
    }
    print_table(
        &format!(
            "E19: erase a sort-key prefix of width N from {} entries",
            grouped(POPULATION)
        ),
        &[
            "strategy",
            "erased keys",
            "delete writes",
            "erase bytes written",
            "reclaim bytes written",
            "erase ms",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: the range tombstone issues exactly ONE delete write at\n\
         every width, with erase-step bytes that do not grow with N; point deletes\n\
         issue N writes and their erase-step bytes scale roughly linearly (WAL\n\
         records plus the flushes/compactions the tombstones force). Both leave\n\
         the same logical state — the asserts check it."
    );
}
