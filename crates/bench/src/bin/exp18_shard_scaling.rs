//! E18 — Shard-count sweep: what horizontal partitioning buys (and
//! costs) on one machine.
//!
//! The same seeded workload is driven embedded against a
//! [`ShardedDb`] at 1, 2, 4, and 8 shards. The router is serial — one
//! op at a time, like the single engine — so this isolates the
//! *partitioning* effects from concurrency:
//!
//! * throughput and tail latency: each shard holds 1/N of the data (so
//!   its levels stay shallower), but every op pays the router's hash +
//!   admission barrier, and N engines seal N sets of smaller memtables
//!   — on a serial driver the tax is visible; the payoff is concurrent
//!   clients (the server's per-connection threads land on disjoint
//!   shards) and per-shard operational isolation;
//! * result identity: every shard count must produce the same
//!   [`acheron_workload::RunReport::check_digest`] — partitioning
//!   changes the layout, never the answer;
//! * the delete-persistence bound: after a sustained delete phase the
//!   fleet-wide maximum tombstone age (the worst shard) must respect
//!   `D_th` at every width, because FADE's deadline discipline runs
//!   per shard on that shard's own tombstones.
//!
//! Scan-heavy mixes pay for sharding (every scan fans out to all N
//! shards and merges); the second table quantifies that tax.

use std::sync::Arc;

use acheron::ShardedDb;
use acheron_bench::{base_opts, grouped, print_table};
use acheron_vfs::MemFs;
use acheron_workload::{run_ops, KeyDistribution, Op, OpMix, WorkloadGen, WorkloadSpec};

const OPS: usize = 30_000;
const KEYSPACE: u64 = 10_000;
const D_TH: u64 = 20_000;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn fresh(shards: usize) -> ShardedDb {
    ShardedDb::open(
        Arc::new(MemFs::new()),
        "db",
        base_opts().with_fade(D_TH),
        shards,
    )
    .unwrap()
}

fn stream(mix: OpMix) -> Vec<Op> {
    WorkloadGen::new(WorkloadSpec::new(mix, KeyDistribution::uniform(KEYSPACE))).take(OPS)
}

/// Run `ops` at each shard count; return one table row per width plus
/// the digest of the first run for the identity check.
fn sweep(ops: &[Op], label: &str) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    let mut reference_digest = None;
    for shards in SHARD_COUNTS {
        let db = fresh(shards);
        let report = run_ops(&db, ops).unwrap();
        db.verify_integrity().unwrap();

        let digest = *reference_digest.get_or_insert(report.check_digest);
        assert_eq!(
            report.check_digest, digest,
            "{label}: {shards}-shard run diverged from the 1-shard digest"
        );

        rows.push(vec![
            shards.to_string(),
            grouped(report.ops_per_sec() as u64),
            grouped(report.op_p50_us),
            grouped(report.op_p99_us),
            format!("{:08x}", report.check_digest),
        ]);
    }
    rows
}

/// Sustained deletes, then maintenance up to the deadline: the worst
/// shard's tombstone age must stay within `D_th` at every width.
fn persistence_row(shards: usize) -> Vec<String> {
    let db = fresh(shards);
    let mut gen = WorkloadGen::new(WorkloadSpec::new(
        OpMix::write_heavy(40),
        KeyDistribution::uniform(KEYSPACE),
    ));
    run_ops(&db, &gen.take(OPS)).unwrap();
    let live_before = db.live_tombstones();

    // Age the fleet past the deadline in sub-margin steps, as a
    // deployment's maintenance timer would.
    let step = (D_TH / 16).max(1);
    for _ in 0..20 {
        db.advance_clock(step);
        db.maintain().unwrap();
    }
    let max_age = db.fleet_max_tombstone_age().unwrap_or(0);
    assert!(
        max_age <= D_TH,
        "{shards} shards: fleet max tombstone age {max_age} exceeds D_th {D_TH}"
    );
    db.verify_integrity().unwrap();

    vec![
        shards.to_string(),
        grouped(live_before),
        grouped(db.live_tombstones()),
        grouped(max_age),
        grouped(D_TH),
    ]
}

fn main() {
    let write_rows = sweep(&stream(OpMix::mixed(70, 10, 20, 0)), "write-heavy");
    print_table(
        "E18a: shard-count sweep, write-heavy mix (70/10/20/0), serial router",
        &["shards", "ops/s", "p50 us", "p99 us", "digest"],
        &write_rows,
    );

    let scan_rows = sweep(&stream(OpMix::mixed(30, 5, 25, 40)), "scan-heavy");
    print_table(
        "E18b: shard-count sweep, scan-heavy mix (30/5/25/40) — the fan-out tax",
        &["shards", "ops/s", "p50 us", "p99 us", "digest"],
        &scan_rows,
    );

    let bound_rows: Vec<Vec<String>> = SHARD_COUNTS.into_iter().map(persistence_row).collect();
    print_table(
        "E18c: delete-persistence bound across the fleet (40% deletes, then aged)",
        &[
            "shards",
            "live tombstones (pre)",
            "live (post)",
            "fleet max age",
            "D_th",
        ],
        &bound_rows,
    );

    println!(
        "\nExpected shape: a serial driver pays a modest per-op tax as width\n\
         grows (router hash + barrier, N sets of smaller memtables sealing\n\
         more often), and scans pay an N-way fan-out + merge tax on top —\n\
         sharding buys concurrent-client parallelism and operational\n\
         isolation, not single-threaded speed. Digests are identical at\n\
         every width — partitioning changes the layout, never the answer —\n\
         and the worst shard's tombstone age respects D_th at every width,\n\
         because FADE runs per shard."
    );
}
