//! E10 — Ablation: how `D_th` is split into per-level TTLs.
//!
//! Uniform allocation gives every level the same slice of the deadline,
//! which forces deep (large) levels into frequent, expensive expiry
//! compactions. Exponential allocation (∝ level capacity, Lethe's
//! choice) gives deep levels proportionally more time and should meet
//! the same bound with less write amplification.

use acheron::{FadeOptions, FilePickPolicy, TtlAllocation};
use acheron_bench::{base_opts, f2, grouped, open_db, print_table};
use acheron_workload::{run_ops, KeyDistribution, OpMix, WorkloadGen, WorkloadSpec};

const OPS: usize = 40_000;

fn run(alloc: TtlAllocation, d_th: u64) -> Vec<String> {
    let mut opts = base_opts();
    opts.fade = Some(FadeOptions {
        delete_persistence_threshold: d_th,
        ttl_allocation: alloc,
        saturation_pick: FilePickPolicy::MinOverlap,
    });
    let (_fs, db) = open_db(opts);
    let spec = WorkloadSpec::new(OpMix::write_heavy(20), KeyDistribution::uniform(30_000));
    let ops = WorkloadGen::new(spec).take(OPS);
    run_ops(&db, &ops).unwrap();
    db.maintain().unwrap();
    use std::sync::atomic::Ordering::Relaxed;
    let s = db.stats();
    vec![
        format!("{alloc:?}"),
        grouped(d_th),
        f2(s.write_amplification()),
        grouped(s.ttl_compactions.load(Relaxed)),
        grouped(s.persistence_latency.max()),
        grouped(s.persistence_violations.load(Relaxed)),
    ]
}

fn main() {
    let mut rows = Vec::new();
    for d_th in [8_000u64, 32_000] {
        rows.push(run(TtlAllocation::Uniform, d_th));
        rows.push(run(TtlAllocation::Exponential, d_th));
    }
    print_table(
        "E10: TTL allocation ablation (uniform vs exponential)",
        &[
            "allocation",
            "D_th",
            "write amp",
            "ttl compactions",
            "max persist",
            "violations",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: both allocations give 0 violations and max persistence\n\
         within D_th. Exponential expires shallow stations aggressively (tiny d_0),\n\
         buying earlier persistence at extra write amplification; uniform is cheaper\n\
         whenever level sizes are small enough that deep-level compactions do not\n\
         dominate — see EXPERIMENTS.md for the scale caveat vs the paper's setting."
    );
}
