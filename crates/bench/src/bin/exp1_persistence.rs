//! E1 — Delete persistence latency: vanilla LSM vs FADE.
//!
//! Claim checked: a delete-blind LSM gives **no bound** on how long a
//! tombstone (and the data it invalidates) survives; FADE bounds it by
//! the user's `D_th`, for any `D_th`.
//!
//! Scenario: ingest a key population, delete a quarter of it, keep
//! ingesting into a *different* key range (so saturation alone has no
//! reason to touch the deleted range), then let the clock run. For each
//! engine we report the persistence-latency distribution of purged
//! tombstones and — the paper's point — how many tombstones are still
//! alive long after the threshold.

use acheron_bench::{base_opts, f2, grouped, open_db, print_table, settle, settle_background};
use acheron_workload::key_bytes;

fn run(d_th: Option<u64>, background_threads: usize) -> Vec<String> {
    let mut opts = match d_th {
        Some(d) => base_opts().with_fade(d),
        None => base_opts(),
    };
    opts.background_threads = background_threads;
    let (_fs, db) = open_db(opts);

    const POPULATION: u64 = 8_000;
    const DELETES: u64 = 2_000;
    const FILL: u64 = 12_000;

    for i in 0..POPULATION {
        db.put(&key_bytes(i), &[b'v'; 48]).unwrap();
    }
    for i in 0..DELETES {
        db.delete(&key_bytes(i * (POPULATION / DELETES))).unwrap();
    }
    // Unrelated hot range keeps the engine busy without touching the
    // deleted range.
    for i in 0..FILL {
        db.put(format!("zzz{i:09}").as_bytes(), &[b'w'; 48])
            .unwrap();
    }
    // Let wall-clock time pass (ticks) far beyond any sane threshold.
    // Synchronous mode gets maintenance opportunities at the cadence a
    // deployment's background timer would provide; background mode only
    // gets the clock advanced — the workers must act on their own.
    let step = d_th.map_or(2_000, |d| (d / 32).max(1));
    if background_threads > 0 {
        settle_background(&db, 400_000, step);
    } else {
        settle(&db, 400_000, step);
    }

    let s = db.stats();
    use std::sync::atomic::Ordering::Relaxed;
    let purged = s.tombstones_purged.load(Relaxed);
    let live = db.live_tombstones();
    let unbounded_age = db.oldest_live_tombstone_age().unwrap_or(0);
    let label = match d_th {
        None => "baseline".into(),
        Some(d) if background_threads > 0 => {
            format!("FADE D_th={} (bg x{background_threads})", grouped(d))
        }
        Some(d) => format!("FADE D_th={}", grouped(d)),
    };
    vec![
        label,
        grouped(DELETES),
        grouped(purged),
        grouped(live),
        grouped(s.persistence_latency.max()),
        grouped(s.persistence_latency.quantile(0.99)),
        f2(s.persistence_latency.mean()),
        grouped(unbounded_age),
        grouped(s.persistence_violations.load(Relaxed)),
    ]
}

fn main() {
    let mut rows = Vec::new();
    rows.push(run(None, 0));
    for d_th in [5_000u64, 20_000, 80_000] {
        rows.push(run(Some(d_th), 0));
    }
    // Same guarantee with the background executor: flushes and
    // TTL-driven compactions run on worker threads, with no inline
    // `maintain()` calls at all.
    rows.push(run(Some(20_000), 2));
    print_table(
        "E1: delete persistence latency (ticks; 1 tick = 1 write op)",
        &[
            "engine",
            "deletes",
            "purged",
            "still live",
            "max lat",
            "p99 lat",
            "mean lat",
            "oldest live age",
            "violations",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: the baseline leaves tombstones alive with unbounded age;\n\
         every FADE row purges all tombstones with max latency <= its D_th and zero\n\
         violations — including the (bg xN) row, where maintenance runs entirely on\n\
         background worker threads with no inline maintain() calls."
    );
}
