//! E13 (extension) — ingestion cost vs data sortedness.
//!
//! A nod to the group's BoDS/SWARE line (also in the supplied source
//! text): LSM ingestion should get *cheaper* as incoming data approaches
//! sorted order, because flushed files stop overlapping and leveled
//! compactions degenerate into trivial moves. We sweep the
//! (K, L)-sortedness of the ingest stream and report write
//! amplification and throughput.

use std::time::Instant;

use acheron_bench::{base_opts, f2, grouped, open_db, print_table};
use acheron_workload::{key_bytes, measure_sortedness, near_sorted_stream};

const N: u64 = 30_000;

fn run(k: f64, l: u64) -> Vec<String> {
    let stream = near_sorted_stream(N, k, l, 1234);
    let (k_measured, l_measured) = measure_sortedness(&stream);
    let (_fs, db) = open_db(base_opts());
    let start = Instant::now();
    for id in &stream {
        db.put(&key_bytes(*id), &[b'v'; 64]).unwrap();
    }
    let elapsed = start.elapsed().as_secs_f64();
    use std::sync::atomic::Ordering::Relaxed;
    vec![
        format!("K={k:.2} L={l}"),
        f2(k_measured),
        grouped(l_measured),
        f2(db.stats().write_amplification()),
        grouped(db.stats().compactions.load(Relaxed)),
        grouped((N as f64 / elapsed) as u64),
    ]
}

fn main() {
    let rows = vec![
        run(0.0, 0),       // fully sorted
        run(0.05, 100),    // nearly sorted
        run(0.25, 1_000),  // moderately scrambled
        run(0.50, 10_000), // heavily scrambled
        run(1.00, N),      // ~random
    ];
    print_table(
        "E13: ingestion vs (K, L)-sortedness of the input stream",
        &[
            "stream",
            "measured K",
            "measured L",
            "write amp",
            "compactions",
            "inserts/s",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: write amplification grows monotonically with disorder;\n\
         sorted ingest produces non-overlapping files whose deeper migrations are\n\
         trivial moves, cutting write amplification by several x vs random."
    );
}
