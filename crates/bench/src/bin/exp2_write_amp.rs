//! E2 — Write amplification vs. the persistence threshold `D_th`.
//!
//! Claim checked (Lethe abstract): FADE's timely persistence costs a
//! *modest* write-amplification increase — "between 4% and 25%" at the
//! thresholds they evaluate — and the cost grows as `D_th` shrinks
//! (tighter deadlines force more eager compaction).

use acheron_bench::{base_opts, f2, grouped, open_db, print_table};
use acheron_workload::{run_ops, KeyDistribution, OpMix, WorkloadGen, WorkloadSpec};

const OPS: usize = 40_000;

fn workload() -> Vec<acheron_workload::Op> {
    let spec = WorkloadSpec::new(OpMix::write_heavy(10), KeyDistribution::uniform(30_000));
    WorkloadGen::new(spec).take(OPS)
}

fn run(d_th: Option<u64>, ops: &[acheron_workload::Op]) -> (f64, u64, u64) {
    let opts = match d_th {
        Some(d) => base_opts().with_fade(d),
        None => base_opts(),
    };
    let (_fs, db) = open_db(opts);
    run_ops(&db, ops).unwrap();
    db.maintain().unwrap();
    use std::sync::atomic::Ordering::Relaxed;
    (
        db.stats().write_amplification(),
        db.stats().compactions.load(Relaxed),
        db.stats().ttl_compactions.load(Relaxed),
    )
}

fn main() {
    let ops = workload();
    let (base_wa, base_comp, _) = run(None, &ops);
    let mut rows = vec![vec![
        "baseline".to_string(),
        f2(base_wa),
        "-".to_string(),
        grouped(base_comp),
        "0".to_string(),
    ]];
    for d_th in [2_000u64, 8_000, 32_000, 128_000] {
        let (wa, comp, ttl) = run(Some(d_th), &ops);
        rows.push(vec![
            format!("FADE D_th={}", grouped(d_th)),
            f2(wa),
            format!("{:+.1}%", (wa / base_wa - 1.0) * 100.0),
            grouped(comp),
            grouped(ttl),
        ]);
    }
    print_table(
        "E2: write amplification vs delete persistence threshold",
        &[
            "engine",
            "write amp",
            "vs baseline",
            "compactions",
            "ttl-triggered",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: WA increases as D_th tightens; at relaxed thresholds the\n\
         overhead sits in the single-digit-to-low-tens percent band (Lethe: +4%..25%)."
    );
}
