//! E17 — Observability overhead: the flight recorder must be cheap
//! enough to leave always-on, and the per-op tracer must be free when
//! off.
//!
//! Claims checked:
//!
//! 1. The event ring costs one atomic `fetch_add` plus one slot write
//!    per event and the gauges are recomputed only at version install,
//!    so put/get throughput with the default 4096-slot ring is within
//!    **3%** of a 1-slot ring (the smallest the ring can shrink to —
//!    emission cost is identical, so the pair isolates ring-size and
//!    cache effects; there is no "off" configuration to compare
//!    against, by design).
//! 2. With tracing disabled (the default), the sampler is one untaken
//!    branch per op — throughput stays within the same 3% of the
//!    baseline. Sampled tracing at 1/64 pays one relaxed `fetch_add`
//!    per op plus a trace allocation on the sampled sliver, and must
//!    also hold the bound.
//!
//! All configurations run the same deterministic write+delete+lookup
//! workload several times alternating A/B, and the best run per side is
//! compared (min-over-runs damps scheduler noise).

use std::time::Instant;

use acheron_bench::{base_opts, f2, grouped, open_db, print_table};
use acheron_workload::key_bytes;

const POPULATION: u64 = 10_000;
const LOOKUPS: u64 = 20_000;
const ROUNDS: usize = 3;

struct Run {
    put_ops_per_sec: f64,
    get_ops_per_sec: f64,
    events_emitted: u64,
    traces_sampled: u64,
}

fn run(event_log_capacity: usize, trace_sample_every: u64) -> Run {
    let opts = {
        let mut o = base_opts()
            .with_fade(10_000)
            .with_trace_sampling(trace_sample_every);
        o.event_log_capacity = event_log_capacity;
        o
    };
    let (_fs, db) = open_db(opts);

    let start = Instant::now();
    for i in 0..POPULATION {
        db.put(&key_bytes(i), &[b'v'; 64]).unwrap();
        if i % 4 == 0 {
            db.delete(&key_bytes(i)).unwrap();
        }
        if i % 1024 == 0 {
            db.maintain().unwrap();
        }
    }
    db.flush().unwrap();
    let write_ops = POPULATION + POPULATION / 4 + 1;
    let put_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let mut hits = 0u64;
    for q in 0..LOOKUPS {
        let id = (q * 2_654_435_761) % POPULATION;
        if db.get(&key_bytes(id)).unwrap().is_some() {
            hits += 1;
        }
    }
    let get_secs = start.elapsed().as_secs_f64();
    assert!(hits > 0, "workload sanity");

    Run {
        put_ops_per_sec: write_ops as f64 / put_secs,
        get_ops_per_sec: LOOKUPS as f64 / get_secs,
        events_emitted: db.events().emitted,
        traces_sampled: db.stats().snapshot().traces_sampled,
    }
}

fn best(capacity: usize, trace_sample_every: u64) -> Run {
    let mut best: Option<Run> = None;
    for _ in 0..ROUNDS {
        let r = run(capacity, trace_sample_every);
        let better = best.as_ref().is_none_or(|b| {
            r.put_ops_per_sec + r.get_ops_per_sec > b.put_ops_per_sec + b.get_ops_per_sec
        });
        if better {
            best = Some(r);
        }
    }
    best.unwrap()
}

fn main() {
    // Alternate measurement order A/B by interleaving rounds inside
    // `best`, then compare best-vs-best.
    let full = best(4096, 0);
    let tiny = best(1, 0);
    let sampled = best(4096, 64);
    let row = |name: &str, r: &Run| {
        vec![
            name.to_string(),
            grouped(r.put_ops_per_sec as u64),
            grouped(r.get_ops_per_sec as u64),
            grouped(r.events_emitted),
            grouped(r.traces_sampled),
        ]
    };
    print_table(
        "E17: flight-recorder + tracer overhead",
        &["config", "writes/s", "gets/s", "events emitted", "traces"],
        &[
            row("ring 4096, tracing off", &full),
            row("ring 1, tracing off", &tiny),
            row("ring 4096, trace 1/64", &sampled),
        ],
    );
    let put_ratio = full.put_ops_per_sec / tiny.put_ops_per_sec;
    let get_ratio = full.get_ops_per_sec / tiny.get_ops_per_sec;
    println!(
        "\nthroughput ratio (4096-slot / 1-slot, tracing off): writes {}x, gets {}x",
        f2(put_ratio),
        f2(get_ratio)
    );
    let tput_ratio = sampled.put_ops_per_sec / full.put_ops_per_sec;
    let tget_ratio = sampled.get_ops_per_sec / full.get_ops_per_sec;
    println!(
        "throughput ratio (trace 1/64 / tracing off, same ring): writes {}x, gets {}x",
        f2(tput_ratio),
        f2(tget_ratio)
    );
    assert_eq!(full.traces_sampled, 0, "tracing off must sample nothing");
    assert!(sampled.traces_sampled > 0, "1/64 sampling must fire");
    println!(
        "Expected shape: all four ratios >= 0.97 — the ring is a fixed per-event cost\n\
         (one fetch_add + one slot write) regardless of capacity, tracing-off is one\n\
         untaken branch per op, and 1/64 sampling adds one relaxed fetch_add per op —\n\
         all inside the 3% always-on budget (ratios above 1.0 are noise)."
    );
}
