//! M1–M4: substrate microbenchmarks (Criterion).
//!
//! These pin the performance of the building blocks the experiments
//! rest on: memtable ingestion, Bloom filter probes, block binary
//! search, K-way merge, and end-to-end table lookups at several KiWi
//! granularities.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use acheron_memtable::Memtable;
use acheron_sstable::{BloomFilter, Table, TableBuilder, TableOptions};
use acheron_types::Entry;
use acheron_vfs::{MemFs, Vfs};

fn entry(i: u64) -> Entry {
    Entry::put(
        format!("key{i:010}").into_bytes(),
        vec![b'v'; 64],
        i + 1,
        i % 1000,
    )
}

fn bench_memtable(c: &mut Criterion) {
    c.bench_function("memtable/insert_10k", |b| {
        b.iter(|| {
            let m = Memtable::new();
            for i in 0..10_000u64 {
                m.insert(entry((i * 2_654_435_761) % 1_000_000));
            }
            black_box(m.len())
        })
    });

    let filled = Memtable::new();
    for i in 0..10_000u64 {
        filled.insert(entry(i));
    }
    c.bench_function("memtable/get_hit", |b| {
        let mut q = 0u64;
        b.iter(|| {
            q = (q + 7_919) % 10_000;
            black_box(filled.get(format!("key{q:010}").as_bytes(), u64::MAX >> 8))
        })
    });
}

fn bench_bloom(c: &mut Criterion) {
    let keys: Vec<Vec<u8>> = (0..10_000u64)
        .map(|i| format!("key{i:010}").into_bytes())
        .collect();
    c.bench_function("bloom/build_10k_keys", |b| {
        b.iter(|| black_box(BloomFilter::build(keys.iter().map(|k| k.as_slice()), 10)))
    });
    let filter = BloomFilter::build(keys.iter().map(|k| k.as_slice()), 10);
    c.bench_function("bloom/probe", |b| {
        let mut q = 0u64;
        b.iter(|| {
            q = (q + 48_271) % 20_000;
            black_box(filter.may_contain(format!("key{q:010}").as_bytes()))
        })
    });
}

fn build_table(h: usize, n: u64) -> (Arc<MemFs>, Arc<Table>) {
    let fs = Arc::new(MemFs::new());
    let opts = TableOptions {
        pages_per_tile: h,
        ..Default::default()
    };
    let mut b = TableBuilder::new(fs.create("t.sst").unwrap(), opts).unwrap();
    for i in 0..n {
        b.add(&entry(i)).unwrap();
    }
    b.finish().unwrap();
    let t = Table::open(fs.open("t.sst").unwrap()).unwrap();
    (fs, t)
}

fn bench_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("table/point_lookup");
    for h in [1usize, 8, 32] {
        let (_fs, table) = build_table(h, 50_000);
        group.bench_with_input(BenchmarkId::from_parameter(h), &h, |b, _| {
            let mut q = 0u64;
            b.iter(|| {
                q = (q + 48_271) % 50_000;
                black_box(
                    table
                        .get(format!("key{q:010}").as_bytes(), u64::MAX >> 8, &[])
                        .unwrap(),
                )
            })
        });
    }
    group.finish();

    let (_fs, table) = build_table(1, 50_000);
    c.bench_function("table/full_scan_50k", |b| {
        b.iter(|| {
            let mut it = table.iter(vec![]);
            it.seek_to_first().unwrap();
            let mut n = 0u64;
            while it.valid() {
                n += 1;
                it.next().unwrap();
            }
            black_box(n)
        })
    });
}

fn bench_engine(c: &mut Criterion) {
    use acheron::{Db, DbOptions};
    c.bench_function("engine/put_throughput", |b| {
        let fs = Arc::new(MemFs::new());
        let db = Db::open(fs, "db", DbOptions::default()).unwrap();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            db.put(format!("key{:010}", i % 500_000).as_bytes(), &[b'v'; 64])
                .unwrap();
        })
    });

    let fs = Arc::new(MemFs::new());
    let db = acheron::Db::open(fs, "db", acheron::DbOptions::small()).unwrap();
    for i in 0..50_000u64 {
        db.put(format!("key{i:010}").as_bytes(), &[b'v'; 64])
            .unwrap();
    }
    db.compact_all().unwrap();
    c.bench_function("engine/get_hit", |b| {
        let mut q = 0u64;
        b.iter(|| {
            q = (q + 48_271) % 50_000;
            black_box(db.get(format!("key{q:010}").as_bytes()).unwrap())
        })
    });
}

criterion_group!(
    benches,
    bench_memtable,
    bench_bloom,
    bench_table,
    bench_engine
);
criterion_main!(benches);
