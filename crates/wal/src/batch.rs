//! The logical WAL payload: an atomic batch of mutations.
//!
//! Wire format (all integers varint unless noted):
//!
//! ```text
//! base_seqno (fixed u64 LE) | count (varint u32) | count * op
//! op := kind (1B) | dkey (varint u64) | key (len-prefixed) | payload (len-prefixed)
//! ```
//!
//! For puts the payload is the value; for point deletes it is empty; for
//! secondary range deletes the key is empty and the payload is the
//! 16-byte [`DeleteKeyRange`] encoding. Ops in a batch are stamped
//! `base_seqno`, `base_seqno + 1`, … in order.

use acheron_types::codec::{
    get_u64_le, put_length_prefixed, put_u64_le, put_varint32, put_varint64,
    require_length_prefixed, require_varint64,
};
use acheron_types::{
    DeleteKeyRange, Entry, Error, KeyRangeTombstone, Result, SeqNo, ValueKind, ValuePointer,
};
use bytes::Bytes;

/// One mutation inside a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// Insert/update `key` with `value`; `dkey` is the secondary delete key.
    Put { key: Bytes, value: Bytes, dkey: u64 },
    /// Insert/update `key` with a value already appended to the value
    /// log; the op carries the pointer, not the value. Commit leaders
    /// append the vlog frame *before* logging this record, so a decoded
    /// `PutPtr` always names bytes written earlier in the same commit.
    PutPtr {
        /// The sort key.
        key: Bytes,
        /// Where the separated value lives.
        ptr: ValuePointer,
        /// The secondary delete key.
        dkey: u64,
    },
    /// Point-delete `key`; `tick` is the issue tick (FADE's age seed).
    Delete { key: Bytes, tick: u64 },
    /// Secondary range delete over the delete-key domain.
    RangeDelete { range: DeleteKeyRange },
    /// Sort-key range delete over `[start, end]` (inclusive); `tick` is
    /// the issue tick (FADE's age seed, same as point deletes).
    RangeDeleteKeys { start: Bytes, end: Bytes, tick: u64 },
}

impl WalOp {
    fn kind(&self) -> ValueKind {
        match self {
            WalOp::Put { .. } => ValueKind::Put,
            WalOp::PutPtr { .. } => ValueKind::ValuePointer,
            WalOp::Delete { .. } => ValueKind::Tombstone,
            WalOp::RangeDelete { .. } => ValueKind::RangeTombstone,
            WalOp::RangeDeleteKeys { .. } => ValueKind::KeyRangeTombstone,
        }
    }
}

/// An atomic group of operations sharing consecutive sequence numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalBatch {
    /// Sequence number of the first op.
    pub base_seqno: SeqNo,
    /// The operations, in application order.
    pub ops: Vec<WalOp>,
}

impl WalBatch {
    /// An empty batch starting at `base_seqno`.
    pub fn new(base_seqno: SeqNo) -> WalBatch {
        WalBatch {
            base_seqno,
            ops: Vec::new(),
        }
    }

    /// Sequence number of the last op (equals `base_seqno` for a single
    /// op). Panics on an empty batch.
    pub fn last_seqno(&self) -> SeqNo {
        assert!(!self.ops.is_empty(), "empty batch has no last seqno");
        self.base_seqno + self.ops.len() as u64 - 1
    }

    /// Encode to the wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.ops.len() * 32);
        put_u64_le(&mut out, self.base_seqno);
        put_varint32(&mut out, self.ops.len() as u32);
        for op in &self.ops {
            out.push(op.kind() as u8);
            match op {
                WalOp::Put { key, value, dkey } => {
                    put_varint64(&mut out, *dkey);
                    put_length_prefixed(&mut out, key);
                    put_length_prefixed(&mut out, value);
                }
                WalOp::PutPtr { key, ptr, dkey } => {
                    put_varint64(&mut out, *dkey);
                    put_length_prefixed(&mut out, key);
                    put_length_prefixed(&mut out, &ptr.encode());
                }
                WalOp::Delete { key, tick } => {
                    put_varint64(&mut out, *tick);
                    put_length_prefixed(&mut out, key);
                    put_length_prefixed(&mut out, &[]);
                }
                WalOp::RangeDelete { range } => {
                    put_varint64(&mut out, 0);
                    put_length_prefixed(&mut out, &[]);
                    put_length_prefixed(&mut out, &range.encode());
                }
                WalOp::RangeDeleteKeys { start, end, tick } => {
                    put_varint64(&mut out, *tick);
                    put_length_prefixed(&mut out, start);
                    put_length_prefixed(&mut out, end);
                }
            }
        }
        out
    }

    /// Decode from the wire format, validating structure exhaustively.
    pub fn decode(data: &[u8]) -> Result<WalBatch> {
        let (base_seqno, rest) =
            get_u64_le(data).ok_or_else(|| Error::corruption("wal batch: truncated base seqno"))?;
        let (count, mut rest) = require_varint64(rest, "wal batch count")?;
        let mut ops = Vec::with_capacity(count.min(1024) as usize);
        for i in 0..count {
            let (&kind_byte, r) = rest
                .split_first()
                .ok_or_else(|| Error::corruption(format!("wal batch: truncated op {i}")))?;
            let kind = ValueKind::from_u8(kind_byte).ok_or_else(|| {
                Error::corruption(format!("wal batch: unknown op kind {kind_byte}"))
            })?;
            let (dkey, r) = require_varint64(r, "wal op dkey")?;
            let (key, r) = require_length_prefixed(r, "wal op key")?;
            let (payload, r) = require_length_prefixed(r, "wal op payload")?;
            rest = r;
            ops.push(match kind {
                ValueKind::Put => WalOp::Put {
                    key: Bytes::copy_from_slice(key),
                    value: Bytes::copy_from_slice(payload),
                    dkey,
                },
                ValueKind::ValuePointer => {
                    let ptr = ValuePointer::decode(payload)
                        .ok_or_else(|| Error::corruption("wal put-ptr op: bad pointer encoding"))?;
                    WalOp::PutPtr {
                        key: Bytes::copy_from_slice(key),
                        ptr,
                        dkey,
                    }
                }
                ValueKind::Tombstone => {
                    if !payload.is_empty() {
                        return Err(Error::corruption("wal delete op carries a payload"));
                    }
                    WalOp::Delete {
                        key: Bytes::copy_from_slice(key),
                        tick: dkey,
                    }
                }
                ValueKind::RangeTombstone => {
                    let range = DeleteKeyRange::decode(payload).ok_or_else(|| {
                        Error::corruption("wal range-delete op: bad range encoding")
                    })?;
                    WalOp::RangeDelete { range }
                }
                ValueKind::KeyRangeTombstone => {
                    if payload < key {
                        return Err(Error::corruption(
                            "wal key-range-delete op: end sorts before start",
                        ));
                    }
                    WalOp::RangeDeleteKeys {
                        start: Bytes::copy_from_slice(key),
                        end: Bytes::copy_from_slice(payload),
                        tick: dkey,
                    }
                }
            });
        }
        if !rest.is_empty() {
            return Err(Error::corruption(format!(
                "wal batch: {} trailing bytes after {count} ops",
                rest.len()
            )));
        }
        Ok(WalBatch { base_seqno, ops })
    }

    /// Materialize the batch's point mutations as [`Entry`] values with
    /// their assigned sequence numbers. Secondary range deletes are
    /// yielded as `(seqno, range)` via the second element; sort-key range
    /// deletes as [`KeyRangeTombstone`]s via the third.
    pub fn entries(
        &self,
    ) -> (
        Vec<Entry>,
        Vec<(SeqNo, DeleteKeyRange)>,
        Vec<KeyRangeTombstone>,
    ) {
        let mut entries = Vec::new();
        let mut ranges = Vec::new();
        let mut key_ranges = Vec::new();
        for (i, op) in self.ops.iter().enumerate() {
            let seqno = self.base_seqno + i as u64;
            match op {
                WalOp::Put { key, value, dkey } => {
                    entries.push(Entry::put(key.clone(), value.clone(), seqno, *dkey));
                }
                WalOp::PutPtr { key, ptr, dkey } => {
                    entries.push(Entry {
                        key: key.clone(),
                        seqno,
                        kind: ValueKind::ValuePointer,
                        dkey: *dkey,
                        value: Bytes::copy_from_slice(&ptr.encode()),
                    });
                }
                WalOp::Delete { key, tick } => {
                    entries.push(Entry::tombstone(key.clone(), seqno, *tick));
                }
                WalOp::RangeDelete { range } => ranges.push((seqno, *range)),
                WalOp::RangeDeleteKeys { start, end, tick } => {
                    key_ranges.push(KeyRangeTombstone {
                        start: start.clone(),
                        end: end.clone(),
                        seqno,
                        dkey: *tick,
                    });
                }
            }
        }
        (entries, ranges, key_ranges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WalBatch {
        WalBatch {
            base_seqno: 100,
            ops: vec![
                WalOp::Put {
                    key: Bytes::from_static(b"k1"),
                    value: Bytes::from_static(b"v1"),
                    dkey: 7,
                },
                WalOp::Delete {
                    key: Bytes::from_static(b"k2"),
                    tick: 55,
                },
                WalOp::RangeDelete {
                    range: DeleteKeyRange::new(10, 20),
                },
                WalOp::Put {
                    key: Bytes::from_static(b""),
                    value: Bytes::from_static(b""),
                    dkey: 0,
                },
                WalOp::RangeDeleteKeys {
                    start: Bytes::from_static(b"a"),
                    end: Bytes::from_static(b"m"),
                    tick: 42,
                },
                WalOp::PutPtr {
                    key: Bytes::from_static(b"k3"),
                    ptr: ValuePointer {
                        segment: 2,
                        offset: 8192,
                        len: 517,
                    },
                    dkey: 9,
                },
            ],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let b = sample();
        let decoded = WalBatch::decode(&b.encode()).unwrap();
        assert_eq!(decoded, b);
    }

    #[test]
    fn empty_batch_round_trips() {
        let b = WalBatch::new(1);
        assert_eq!(WalBatch::decode(&b.encode()).unwrap(), b);
    }

    #[test]
    fn last_seqno() {
        assert_eq!(sample().last_seqno(), 105);
    }

    #[test]
    fn entries_assign_consecutive_seqnos() {
        let (entries, ranges, key_ranges) = sample().entries();
        assert_eq!(entries.len(), 4);
        assert_eq!(entries[0].seqno, 100);
        assert_eq!(entries[1].seqno, 101);
        assert!(entries[1].is_tombstone());
        assert_eq!(entries[1].dkey, 55);
        assert_eq!(entries[2].seqno, 103);
        assert_eq!(entries[3].seqno, 105);
        assert_eq!(entries[3].kind, ValueKind::ValuePointer);
        assert_eq!(
            ValuePointer::decode(&entries[3].value),
            Some(ValuePointer {
                segment: 2,
                offset: 8192,
                len: 517,
            })
        );
        assert_eq!(ranges, vec![(102, DeleteKeyRange::new(10, 20))]);
        assert_eq!(
            key_ranges,
            vec![KeyRangeTombstone {
                start: Bytes::from_static(b"a"),
                end: Bytes::from_static(b"m"),
                seqno: 104,
                dkey: 42,
            }]
        );
    }

    #[test]
    fn decode_rejects_inverted_key_range() {
        // Hand-encode a sort-key range delete whose end sorts before its
        // start; the decoder must refuse it.
        let mut data = Vec::new();
        put_u64_le(&mut data, 1);
        put_varint32(&mut data, 1);
        data.push(ValueKind::KeyRangeTombstone as u8);
        put_varint64(&mut data, 0);
        put_length_prefixed(&mut data, b"z");
        put_length_prefixed(&mut data, b"a");
        assert!(WalBatch::decode(&data).is_err());
    }

    #[test]
    fn decode_rejects_truncations() {
        let full = sample().encode();
        for cut in 0..full.len() {
            assert!(
                WalBatch::decode(&full[..cut]).is_err(),
                "prefix of length {cut} must not decode"
            );
        }
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut data = sample().encode();
        data.push(0xaa);
        assert!(WalBatch::decode(&data).is_err());
    }

    #[test]
    fn decode_rejects_unknown_kind() {
        let b = WalBatch {
            base_seqno: 1,
            ops: vec![WalOp::Delete {
                key: Bytes::from_static(b"k"),
                tick: 0,
            }],
        };
        let mut data = b.encode();
        // kind byte is right after the 8-byte seqno + 1-byte count.
        data[9] = 9;
        assert!(WalBatch::decode(&data).is_err());
    }

    #[test]
    fn decode_rejects_put_ptr_with_bad_pointer() {
        // A value-pointer op whose payload is not the exact fixed-size
        // pointer encoding must be refused.
        for bad_len in [0usize, 19, 21] {
            let mut data = Vec::new();
            put_u64_le(&mut data, 1);
            put_varint32(&mut data, 1);
            data.push(ValueKind::ValuePointer as u8);
            put_varint64(&mut data, 0);
            put_length_prefixed(&mut data, b"k");
            put_length_prefixed(&mut data, &vec![0u8; bad_len]);
            assert!(
                WalBatch::decode(&data).is_err(),
                "pointer payload of {bad_len} bytes must not decode"
            );
        }
    }

    #[test]
    fn decode_rejects_delete_with_payload() {
        // Hand-encode a delete op with a non-empty payload.
        let mut data = Vec::new();
        put_u64_le(&mut data, 1);
        put_varint32(&mut data, 1);
        data.push(ValueKind::Tombstone as u8);
        put_varint64(&mut data, 0);
        put_length_prefixed(&mut data, b"k");
        put_length_prefixed(&mut data, b"oops");
        assert!(WalBatch::decode(&data).is_err());
    }

    #[test]
    fn large_batch_round_trip() {
        let mut b = WalBatch::new(5000);
        for i in 0..1000u32 {
            b.ops.push(WalOp::Put {
                key: Bytes::from(format!("key{i}").into_bytes()),
                value: Bytes::from(vec![(i % 256) as u8; (i % 64) as usize]),
                dkey: u64::from(i),
            });
        }
        let decoded = WalBatch::decode(&b.encode()).unwrap();
        assert_eq!(decoded, b);
        assert_eq!(decoded.last_seqno(), 5999);
    }
}
