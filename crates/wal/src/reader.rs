//! Log reader: reassembles fragmented records and classifies damage.
//!
//! Recovery semantics: a WAL's valid prefix is replayed; the first sign
//! of a torn/corrupt tail stops replay. [`ReadOutcome`] distinguishes a
//! clean end-of-log from corruption so the engine can decide whether the
//! tail loss was expected (crash during append — fine) or alarming
//! (corruption *before* previously acknowledged data — surfaced to the
//! caller).

use acheron_types::checksum;
use bytes::Bytes;

use crate::{RecordType, BLOCK_SIZE, HEADER_SIZE};

/// Result of [`LogReader::next_record`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadOutcome {
    /// A complete record.
    Record(Bytes),
    /// Clean end of log (no bytes, or only padding, remain).
    Eof,
    /// The log ends in a damaged or incomplete record at the given file
    /// offset. Everything returned before this outcome is intact.
    Corrupt {
        /// Offset of the damaged fragment.
        offset: u64,
        /// What was wrong.
        reason: String,
    },
}

/// Streaming reader over the full contents of one WAL file.
pub struct LogReader {
    data: Bytes,
    pos: usize,
}

impl LogReader {
    /// Wrap the raw file contents.
    pub fn new(data: Bytes) -> LogReader {
        LogReader { data, pos: 0 }
    }

    /// Read the next record, reassembling fragments.
    pub fn next_record(&mut self) -> ReadOutcome {
        let mut assembled: Option<Vec<u8>> = None;
        loop {
            let frag_offset = self.pos as u64;
            match self.next_fragment() {
                FragOutcome::Eof => {
                    return if assembled.is_some() {
                        ReadOutcome::Corrupt {
                            offset: frag_offset,
                            reason: "log ended inside a fragmented record".into(),
                        }
                    } else {
                        ReadOutcome::Eof
                    };
                }
                FragOutcome::Corrupt(reason) => {
                    return ReadOutcome::Corrupt {
                        offset: frag_offset,
                        reason,
                    };
                }
                FragOutcome::Fragment(rt, payload) => match (rt, &mut assembled) {
                    (RecordType::Full, None) => return ReadOutcome::Record(payload),
                    (RecordType::First, None) => assembled = Some(payload.to_vec()),
                    (RecordType::Middle, Some(buf)) => buf.extend_from_slice(&payload),
                    (RecordType::Last, Some(buf)) => {
                        buf.extend_from_slice(&payload);
                        return ReadOutcome::Record(Bytes::from(std::mem::take(buf)));
                    }
                    (rt, state) => {
                        return ReadOutcome::Corrupt {
                            offset: frag_offset,
                            reason: format!(
                                "fragment type {rt:?} unexpected (mid-record: {})",
                                state.is_some()
                            ),
                        };
                    }
                },
            }
        }
    }

    fn next_fragment(&mut self) -> FragOutcome {
        loop {
            let in_block = self.pos % BLOCK_SIZE;
            let leftover = BLOCK_SIZE - in_block;
            if leftover < HEADER_SIZE {
                // Block trailer padding; skip to the next block.
                if self.pos + leftover > self.data.len() {
                    return FragOutcome::Eof;
                }
                self.pos += leftover;
                continue;
            }
            if self.pos == self.data.len() {
                return FragOutcome::Eof;
            }
            if self.pos + HEADER_SIZE > self.data.len() {
                return FragOutcome::Corrupt("truncated fragment header".into());
            }
            let header = &self.data[self.pos..self.pos + HEADER_SIZE];
            let stored_crc = u32::from_le_bytes(header[..4].try_into().unwrap());
            let len = u16::from_le_bytes(header[4..6].try_into().unwrap()) as usize;
            let type_byte = header[6];
            if stored_crc == 0 && len == 0 && type_byte == 0 {
                // Zero-filled region: preallocated space or padding at
                // the tail of a recycled file. Treat as clean EOF.
                return FragOutcome::Eof;
            }
            let Some(rt) = RecordType::from_u8(type_byte) else {
                return FragOutcome::Corrupt(format!("unknown record type {type_byte}"));
            };
            if in_block + HEADER_SIZE + len > BLOCK_SIZE {
                return FragOutcome::Corrupt("fragment length crosses block boundary".into());
            }
            let start = self.pos + HEADER_SIZE;
            if start + len > self.data.len() {
                return FragOutcome::Corrupt("truncated fragment payload".into());
            }
            let payload = self.data.slice(start..start + len);
            let actual = checksum::mask(checksum::extend(checksum::crc32c(&[type_byte]), &payload));
            if actual != stored_crc {
                return FragOutcome::Corrupt("fragment checksum mismatch".into());
            }
            self.pos = start + len;
            return FragOutcome::Fragment(rt, payload);
        }
    }

    /// Current read offset in the file.
    pub fn offset(&self) -> u64 {
        self.pos as u64
    }
}

enum FragOutcome {
    Fragment(RecordType, Bytes),
    Eof,
    Corrupt(String),
}

/// How one WAL segment ended, as seen by [`recover_records`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TailOutcome {
    /// The segment ended cleanly (EOF or zero padding).
    Clean,
    /// The segment ends in a damaged or incomplete record. Everything
    /// in [`RecoveredLog::records`] precedes the damage and is intact.
    Torn {
        /// File offset of the damaged fragment.
        offset: u64,
        /// What was wrong with it.
        reason: String,
    },
}

/// The replayable prefix of one WAL segment.
#[derive(Debug, Clone)]
pub struct RecoveredLog {
    /// Intact records, in write order.
    pub records: Vec<Bytes>,
    /// Whether the segment's tail was clean or torn.
    pub tail: TailOutcome,
    /// File length up to the end of the last intact record — the point
    /// a truncate-and-continue recovery should cut a torn segment at.
    /// (Not [`TailOutcome::Torn::offset`]: for a fragmented record the
    /// damage may sit past an intact `FIRST` fragment, which must also
    /// be discarded.)
    pub valid_len: u64,
}

impl RecoveredLog {
    /// True if the tail was torn.
    pub fn is_torn(&self) -> bool {
        matches!(self.tail, TailOutcome::Torn { .. })
    }
}

/// Truncate-and-continue recovery of one segment: return every intact
/// record up to the first sign of damage, plus how the segment ended.
///
/// A torn tail is the *expected* shape of a crash mid-append and is not
/// an error here — but it does mean any later-numbered segment must
/// **not** be replayed (its records would be out of order with the ones
/// lost in the tear, resurrecting overwritten values and deleted keys).
/// Callers replaying a sequence of segments must stop at the first
/// [`TailOutcome::Torn`].
pub fn recover_records(data: Bytes) -> RecoveredLog {
    let mut reader = LogReader::new(data);
    let mut records = Vec::new();
    let mut valid_len = 0u64;
    loop {
        match reader.next_record() {
            ReadOutcome::Record(rec) => {
                records.push(rec);
                valid_len = reader.offset();
            }
            ReadOutcome::Eof => {
                return RecoveredLog {
                    records,
                    tail: TailOutcome::Clean,
                    valid_len,
                };
            }
            ReadOutcome::Corrupt { offset, reason } => {
                return RecoveredLog {
                    records,
                    tail: TailOutcome::Torn { offset, reason },
                    valid_len,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LogWriter;
    use acheron_vfs::{MemFs, Vfs};

    fn build_log(records: &[&[u8]]) -> Bytes {
        let fs = MemFs::new();
        let f = fs.create("wal").unwrap();
        let mut w = LogWriter::new(f);
        for r in records {
            w.add_record(r).unwrap();
        }
        w.finish().unwrap();
        fs.read_all("wal").unwrap()
    }

    fn drain(data: Bytes) -> (Vec<Vec<u8>>, ReadOutcome) {
        let mut r = LogReader::new(data);
        let mut out = Vec::new();
        loop {
            match r.next_record() {
                ReadOutcome::Record(rec) => out.push(rec.to_vec()),
                other => return (out, other),
            }
        }
    }

    #[test]
    fn truncated_tail_loses_only_last_record() {
        let data = build_log(&[b"keep-me", b"lose-me"]);
        // Cut into the middle of the second record's payload.
        let cut = data.len() - 3;
        let (records, outcome) = drain(data.slice(..cut));
        assert_eq!(records, vec![b"keep-me".to_vec()]);
        assert!(matches!(outcome, ReadOutcome::Corrupt { .. }));
    }

    #[test]
    fn truncation_at_record_boundary_is_clean_eof() {
        let first = build_log(&[b"keep-me"]);
        let both = build_log(&[b"keep-me", b"second"]);
        let (records, outcome) = drain(both.slice(..first.len()));
        assert_eq!(records, vec![b"keep-me".to_vec()]);
        assert_eq!(outcome, ReadOutcome::Eof);
    }

    #[test]
    fn bit_flip_detected() {
        let data = build_log(&[b"aaaa", b"bbbb"]);
        let mut broken = data.to_vec();
        // Flip a payload byte of the first record.
        broken[HEADER_SIZE] ^= 0x01;
        let (records, outcome) = drain(Bytes::from(broken));
        assert!(records.is_empty());
        match outcome {
            ReadOutcome::Corrupt { reason, offset } => {
                assert!(reason.contains("checksum"), "{reason}");
                assert_eq!(offset, 0);
            }
            other => panic!("expected corrupt, got {other:?}"),
        }
    }

    #[test]
    fn zero_filled_tail_is_eof() {
        let data = build_log(&[b"rec"]);
        let mut padded = data.to_vec();
        padded.extend_from_slice(&[0u8; 64]);
        let (records, outcome) = drain(Bytes::from(padded));
        assert_eq!(records, vec![b"rec".to_vec()]);
        assert_eq!(outcome, ReadOutcome::Eof);
    }

    #[test]
    fn fragmented_record_missing_last_fragment_is_corrupt() {
        // Build a 2-block record, then truncate to the first block only.
        let data = build_log(&[&vec![5u8; BLOCK_SIZE + 100]]);
        let (records, outcome) = drain(data.slice(..BLOCK_SIZE));
        assert!(records.is_empty());
        assert!(matches!(outcome, ReadOutcome::Corrupt { .. }));
    }

    #[test]
    fn middle_without_first_is_corrupt() {
        // Handcraft a MIDDLE fragment at offset 0.
        let payload = b"stray";
        let crc = checksum::mask(checksum::extend(
            checksum::crc32c(&[RecordType::Middle as u8]),
            payload,
        ));
        let mut data = Vec::new();
        data.extend_from_slice(&crc.to_le_bytes());
        data.extend_from_slice(&(payload.len() as u16).to_le_bytes());
        data.push(RecordType::Middle as u8);
        data.extend_from_slice(payload);
        let (records, outcome) = drain(Bytes::from(data));
        assert!(records.is_empty());
        assert!(matches!(outcome, ReadOutcome::Corrupt { .. }));
    }

    #[test]
    fn every_prefix_of_a_log_recovers_a_prefix_of_records() {
        // Durability invariant I4 at the framing layer: for any cut
        // point, recovered records are a prefix of the written records.
        let records: Vec<Vec<u8>> = (0..40).map(|i| vec![i as u8; (i * 37) % 700 + 1]).collect();
        let refs: Vec<&[u8]> = records.iter().map(|r| r.as_slice()).collect();
        let data = build_log(&refs);
        for cut in (0..data.len()).step_by(311) {
            let (got, _outcome) = drain(data.slice(..cut));
            assert!(got.len() <= records.len());
            assert_eq!(
                got.as_slice(),
                &records[..got.len()],
                "prefix property violated at cut {cut}"
            );
        }
    }

    #[test]
    fn recover_records_truncates_and_continues_on_corrupt_final_record() {
        // Three records; smash bytes inside the final one. Recovery
        // must keep the first two and classify the tail as torn — not
        // error out.
        let data = build_log(&[b"first", b"second", b"doomed"]);
        let mut broken = data.to_vec();
        let len = broken.len();
        for b in &mut broken[len - 4..] {
            *b ^= 0x5a;
        }
        let rec = recover_records(Bytes::from(broken));
        assert_eq!(
            rec.records,
            vec![Bytes::from_static(b"first"), Bytes::from_static(b"second")]
        );
        assert!(rec.is_torn());
        match rec.tail {
            TailOutcome::Torn { reason, .. } => {
                assert!(reason.contains("checksum"), "{reason}")
            }
            TailOutcome::Clean => panic!("tail must be torn"),
        }
    }

    #[test]
    fn recover_records_clean_log() {
        let rec = recover_records(build_log(&[b"a", b"bb"]));
        assert_eq!(rec.records.len(), 2);
        assert_eq!(rec.tail, TailOutcome::Clean);
        assert!(!rec.is_torn());
    }

    #[test]
    fn recover_records_short_final_write() {
        // The final record's bytes only partially reached the device (a
        // short write): its intact predecessors still recover.
        let data = build_log(&[b"keep-a", b"keep-b", b"torn-away"]);
        let rec = recover_records(data.slice(..data.len() - 5));
        assert_eq!(
            rec.records,
            vec![Bytes::from_static(b"keep-a"), Bytes::from_static(b"keep-b")]
        );
        assert!(rec.is_torn());
    }

    #[test]
    fn offset_advances_monotonically() {
        let data = build_log(&[b"a", b"bb", b"ccc"]);
        let mut r = LogReader::new(data);
        let mut last = 0;
        while let ReadOutcome::Record(_) = r.next_record() {
            assert!(r.offset() > last);
            last = r.offset();
        }
    }
}
