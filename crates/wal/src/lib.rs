//! Write-ahead log for the Acheron engine.
//!
//! The format is the block-framed layout proven in LevelDB/RocksDB:
//! the file is a sequence of 32 KiB blocks; each record is stored as one
//! or more *fragments* (`FULL`, or `FIRST`/`MIDDLE`*/`LAST`), each with a
//! masked CRC32C over its type byte and payload. Fragmentation means a
//! record never straddles a block boundary mid-header, so a reader can
//! resynchronize after a torn write and recovery is O(valid prefix).
//!
//! On top of the framing, [`batch`] defines the logical payload: a
//! `WalBatch` of puts / point deletes / secondary range deletes stamped
//! with a base sequence number — exactly the unit of atomicity the
//! engine's write path needs.

pub mod batch;
pub mod reader;
pub mod writer;

pub use batch::{WalBatch, WalOp};
pub use reader::{recover_records, LogReader, ReadOutcome, RecoveredLog, TailOutcome};
pub use writer::LogWriter;

/// Size of a log block. Records never span a block header boundary.
pub const BLOCK_SIZE: usize = 32 * 1024;

/// Per-fragment header: CRC32C (4) + length (2) + type (1).
pub const HEADER_SIZE: usize = 7;

/// Fragment types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RecordType {
    /// An entire record in one fragment.
    Full = 1,
    /// First fragment of a multi-fragment record.
    First = 2,
    /// Interior fragment.
    Middle = 3,
    /// Final fragment.
    Last = 4,
}

impl RecordType {
    pub(crate) fn from_u8(v: u8) -> Option<RecordType> {
        match v {
            1 => Some(RecordType::Full),
            2 => Some(RecordType::First),
            3 => Some(RecordType::Middle),
            4 => Some(RecordType::Last),
            _ => None,
        }
    }
}

#[cfg(test)]
mod round_trip_tests {
    use super::*;
    use acheron_vfs::{MemFs, Vfs};

    fn write_records(fs: &MemFs, path: &str, records: &[Vec<u8>]) {
        let file = fs.create(path).unwrap();
        let mut w = LogWriter::new(file);
        for r in records {
            w.add_record(r).unwrap();
        }
        w.finish().unwrap();
    }

    fn read_records(fs: &MemFs, path: &str) -> Vec<Vec<u8>> {
        let data = fs.read_all(path).unwrap();
        let mut r = LogReader::new(data);
        let mut out = Vec::new();
        while let ReadOutcome::Record(rec) = r.next_record() {
            out.push(rec.to_vec());
        }
        out
    }

    #[test]
    fn empty_log() {
        let fs = MemFs::new();
        write_records(&fs, "wal", &[]);
        assert!(read_records(&fs, "wal").is_empty());
    }

    #[test]
    fn small_records_round_trip() {
        let fs = MemFs::new();
        let records: Vec<Vec<u8>> = vec![b"alpha".to_vec(), b"".to_vec(), b"gamma-rays".to_vec()];
        write_records(&fs, "wal", &records);
        assert_eq!(read_records(&fs, "wal"), records);
    }

    #[test]
    fn records_spanning_many_blocks() {
        let fs = MemFs::new();
        // One tiny, one exactly block-payload-sized, one spanning 3 blocks.
        let records: Vec<Vec<u8>> = vec![
            vec![1u8; 10],
            vec![2u8; BLOCK_SIZE - HEADER_SIZE],
            vec![3u8; BLOCK_SIZE * 3 + 123],
            vec![4u8; 1],
        ];
        write_records(&fs, "wal", &records);
        assert_eq!(read_records(&fs, "wal"), records);
    }

    #[test]
    fn record_forcing_block_trailer_padding() {
        let fs = MemFs::new();
        // First record leaves fewer than HEADER_SIZE bytes in the block,
        // forcing the writer to pad and start a new block.
        let first_len = BLOCK_SIZE - HEADER_SIZE - 3;
        let records: Vec<Vec<u8>> = vec![vec![7u8; first_len], b"next".to_vec()];
        write_records(&fs, "wal", &records);
        assert_eq!(read_records(&fs, "wal"), records);
    }
}
