//! Log writer: fragments records across 32 KiB blocks.

use acheron_types::checksum;
use acheron_types::Result;
use acheron_vfs::WritableFile;

use crate::{RecordType, BLOCK_SIZE, HEADER_SIZE};

/// Appends framed records to a [`WritableFile`].
pub struct LogWriter {
    file: Box<dyn WritableFile>,
    /// Offset within the current block.
    block_offset: usize,
}

impl LogWriter {
    /// Wrap a fresh (or resumed-at-block-boundary) file.
    pub fn new(file: Box<dyn WritableFile>) -> LogWriter {
        let block_offset = (file.len() as usize) % BLOCK_SIZE;
        LogWriter { file, block_offset }
    }

    /// Append one record, fragmenting as needed.
    pub fn add_record(&mut self, payload: &[u8]) -> Result<()> {
        let mut remaining = payload;
        let mut is_first = true;
        loop {
            let leftover = BLOCK_SIZE - self.block_offset;
            if leftover < HEADER_SIZE {
                // Too little room even for a header: pad with zeros and
                // switch to a new block. Readers skip the padding.
                if leftover > 0 {
                    const ZEROS: [u8; HEADER_SIZE] = [0; HEADER_SIZE];
                    self.file.append(&ZEROS[..leftover])?;
                }
                self.block_offset = 0;
                continue;
            }
            let available = BLOCK_SIZE - self.block_offset - HEADER_SIZE;
            let fragment_len = remaining.len().min(available);
            let is_last = fragment_len == remaining.len();
            let record_type = match (is_first, is_last) {
                (true, true) => RecordType::Full,
                (true, false) => RecordType::First,
                (false, false) => RecordType::Middle,
                (false, true) => RecordType::Last,
            };
            self.emit(record_type, &remaining[..fragment_len])?;
            remaining = &remaining[fragment_len..];
            is_first = false;
            if is_last {
                return Ok(());
            }
        }
    }

    fn emit(&mut self, rt: RecordType, fragment: &[u8]) -> Result<()> {
        debug_assert!(self.block_offset + HEADER_SIZE + fragment.len() <= BLOCK_SIZE);
        let crc = {
            let c = checksum::extend(checksum::crc32c(&[rt as u8]), fragment);
            checksum::mask(c)
        };
        let mut header = [0u8; HEADER_SIZE];
        header[..4].copy_from_slice(&crc.to_le_bytes());
        header[4..6].copy_from_slice(&(fragment.len() as u16).to_le_bytes());
        header[6] = rt as u8;
        self.file.append(&header)?;
        self.file.append(fragment)?;
        self.block_offset += HEADER_SIZE + fragment.len();
        debug_assert!(self.block_offset <= BLOCK_SIZE);
        if self.block_offset == BLOCK_SIZE {
            self.block_offset = 0;
        }
        Ok(())
    }

    /// Durably sync everything appended so far.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync()
    }

    /// Flush buffers and finish the file.
    pub fn finish(&mut self) -> Result<()> {
        self.file.finish()
    }

    /// Bytes written to the underlying file.
    pub fn len(&self) -> u64 {
        self.file.len()
    }

    /// True if nothing was written yet.
    pub fn is_empty(&self) -> bool {
        self.file.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acheron_vfs::{MemFs, Vfs};

    #[test]
    fn header_layout_is_stable() {
        // The on-disk format is a compatibility surface: pin it.
        let fs = MemFs::new();
        let f = fs.create("wal").unwrap();
        let mut w = LogWriter::new(f);
        w.add_record(b"ab").unwrap();
        w.finish().unwrap();
        let data = fs.read_all("wal").unwrap();
        assert_eq!(data.len(), HEADER_SIZE + 2);
        // length field
        assert_eq!(u16::from_le_bytes([data[4], data[5]]), 2);
        // type field
        assert_eq!(data[6], RecordType::Full as u8);
        // checksum covers type byte + payload, masked
        let expected = acheron_types::checksum::mask(acheron_types::checksum::crc32c(&[
            RecordType::Full as u8,
            b'a',
            b'b',
        ]));
        assert_eq!(
            u32::from_le_bytes([data[0], data[1], data[2], data[3]]),
            expected
        );
    }

    #[test]
    fn block_offset_resets_exactly_at_boundary() {
        let fs = MemFs::new();
        let f = fs.create("wal").unwrap();
        let mut w = LogWriter::new(f);
        // Fill exactly one block.
        w.add_record(&vec![9u8; BLOCK_SIZE - HEADER_SIZE]).unwrap();
        assert_eq!(w.block_offset, 0);
        w.add_record(b"x").unwrap();
        w.finish().unwrap();
        assert_eq!(w.len() as usize, BLOCK_SIZE + HEADER_SIZE + 1);
    }

    #[test]
    fn resume_mid_block_positions_offset() {
        // A writer created over a file with existing bytes must continue
        // at the correct in-block offset.
        let fs = MemFs::new();
        {
            let f = fs.create("wal").unwrap();
            let mut w = LogWriter::new(f);
            w.add_record(b"first").unwrap();
            w.finish().unwrap();
        }
        // Re-open by reading existing length, then append through a new
        // writer over a file primed with the same content.
        let existing = fs.read_all("wal").unwrap();
        let mut f2 = fs.create("wal").unwrap();
        f2.append(&existing).unwrap();
        let mut w = LogWriter::new(f2);
        assert_eq!(w.block_offset, HEADER_SIZE + 5);
        w.add_record(b"second").unwrap();
        w.finish().unwrap();

        let data = fs.read_all("wal").unwrap();
        let mut r = crate::LogReader::new(data);
        let mut got = Vec::new();
        while let crate::ReadOutcome::Record(rec) = r.next_record() {
            got.push(rec.to_vec());
        }
        assert_eq!(got, vec![b"first".to_vec(), b"second".to_vec()]);
    }
}
