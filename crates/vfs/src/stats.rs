//! Byte-level I/O accounting.
//!
//! Write amplification in the experiments is computed as
//! `bytes_written / user payload bytes`, with the numerator read from
//! these counters — the filesystem is the single choke point through
//! which every flush, compaction, WAL append, and manifest write passes.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone I/O counters shared by all files of a filesystem.
#[derive(Debug, Default)]
pub struct IoStats {
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
    write_ops: AtomicU64,
    read_ops: AtomicU64,
    syncs: AtomicU64,
    files_created: AtomicU64,
    files_deleted: AtomicU64,
}

impl IoStats {
    /// Fresh counters, all zero.
    pub fn new() -> IoStats {
        IoStats::default()
    }

    pub(crate) fn record_write(&self, bytes: u64) {
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        self.write_ops.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_read(&self, bytes: u64) {
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        self.read_ops.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_sync(&self) {
        self.syncs.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_create(&self) {
        self.files_created.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_delete(&self) {
        self.files_deleted.fetch_add(1, Ordering::Relaxed);
    }

    /// Total bytes appended/written across all files.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Total bytes read across all files.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Number of fsync-equivalent operations.
    pub fn syncs(&self) -> u64 {
        self.syncs.load(Ordering::Relaxed)
    }

    /// A consistent-enough point-in-time copy of all counters.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        IoStatsSnapshot {
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            write_ops: self.write_ops.load(Ordering::Relaxed),
            read_ops: self.read_ops.load(Ordering::Relaxed),
            syncs: self.syncs.load(Ordering::Relaxed),
            files_created: self.files_created.load(Ordering::Relaxed),
            files_deleted: self.files_deleted.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of [`IoStats`] at a point in time; supports `-` for
/// computing deltas over a measurement window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStatsSnapshot {
    pub bytes_written: u64,
    pub bytes_read: u64,
    pub write_ops: u64,
    pub read_ops: u64,
    pub syncs: u64,
    pub files_created: u64,
    pub files_deleted: u64,
}

impl std::ops::Sub for IoStatsSnapshot {
    type Output = IoStatsSnapshot;
    fn sub(self, rhs: IoStatsSnapshot) -> IoStatsSnapshot {
        IoStatsSnapshot {
            bytes_written: self.bytes_written.saturating_sub(rhs.bytes_written),
            bytes_read: self.bytes_read.saturating_sub(rhs.bytes_read),
            write_ops: self.write_ops.saturating_sub(rhs.write_ops),
            read_ops: self.read_ops.saturating_sub(rhs.read_ops),
            syncs: self.syncs.saturating_sub(rhs.syncs),
            files_created: self.files_created.saturating_sub(rhs.files_created),
            files_deleted: self.files_deleted.saturating_sub(rhs.files_deleted),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::new();
        s.record_write(100);
        s.record_write(50);
        s.record_read(7);
        s.record_sync();
        s.record_create();
        s.record_delete();
        let snap = s.snapshot();
        assert_eq!(snap.bytes_written, 150);
        assert_eq!(snap.write_ops, 2);
        assert_eq!(snap.bytes_read, 7);
        assert_eq!(snap.read_ops, 1);
        assert_eq!(snap.syncs, 1);
        assert_eq!(snap.files_created, 1);
        assert_eq!(snap.files_deleted, 1);
    }

    #[test]
    fn snapshot_delta() {
        let s = IoStats::new();
        s.record_write(10);
        let before = s.snapshot();
        s.record_write(32);
        s.record_read(4);
        let delta = s.snapshot() - before;
        assert_eq!(delta.bytes_written, 32);
        assert_eq!(delta.bytes_read, 4);
        assert_eq!(delta.write_ops, 1);
    }

    #[test]
    fn delta_saturates_instead_of_underflowing() {
        let a = IoStatsSnapshot {
            bytes_written: 5,
            ..Default::default()
        };
        let b = IoStatsSnapshot {
            bytes_written: 9,
            ..Default::default()
        };
        assert_eq!((a - b).bytes_written, 0);
    }
}
