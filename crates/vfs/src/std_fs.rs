//! Real-file [`Vfs`] backed by `std::fs`.
//!
//! Writers buffer through [`std::io::BufWriter`]; `sync` flushes the
//! buffer and, when the filesystem was created with `fsync_enabled`,
//! issues a real `fsync`. Readers use positional reads so a single open
//! file handle can serve concurrent readers.

use std::fs;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

use acheron_types::{Error, Result};
use bytes::Bytes;
use parking_lot::Mutex;

use crate::stats::IoStats;
use crate::{RandomAccessFile, Vfs, WritableFile};

/// A [`Vfs`] over the host filesystem.
pub struct StdFs {
    stats: Arc<IoStats>,
    fsync_enabled: bool,
}

impl StdFs {
    /// `fsync_enabled` controls whether [`WritableFile::sync`] issues a
    /// real `fsync` (durability) or only flushes userspace buffers
    /// (benchmarking real files without paying device sync latency).
    pub fn new(fsync_enabled: bool) -> StdFs {
        StdFs {
            stats: Arc::new(IoStats::new()),
            fsync_enabled,
        }
    }
}

struct StdWritable {
    writer: BufWriter<fs::File>,
    len: u64,
    stats: Arc<IoStats>,
    fsync_enabled: bool,
    path: String,
}

impl WritableFile for StdWritable {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        self.writer
            .write_all(data)
            .map_err(|e| Error::io(format!("append to {}", self.path), e))?;
        self.len += data.len() as u64;
        self.stats.record_write(data.len() as u64);
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.writer
            .flush()
            .map_err(|e| Error::io(format!("flush {}", self.path), e))?;
        if self.fsync_enabled {
            self.writer
                .get_ref()
                .sync_data()
                .map_err(|e| Error::io(format!("fsync {}", self.path), e))?;
        }
        self.stats.record_sync();
        Ok(())
    }

    fn len(&self) -> u64 {
        self.len
    }

    fn finish(&mut self) -> Result<()> {
        self.writer
            .flush()
            .map_err(|e| Error::io(format!("finish {}", self.path), e))
    }
}

struct StdReadable {
    // Positional reads (`read_at`) need no seek state on Unix, but to stay
    // portable we guard a seekable handle with a mutex.
    file: Mutex<fs::File>,
    size: u64,
    stats: Arc<IoStats>,
    path: String,
}

impl RandomAccessFile for StdReadable {
    fn read_at(&self, offset: u64, len: usize) -> Result<Bytes> {
        if offset.saturating_add(len as u64) > self.size {
            return Err(Error::corruption(format!(
                "read past EOF in {}: want [{offset}, {}), file has {} bytes",
                self.path,
                offset + len as u64,
                self.size
            )));
        }
        let mut buf = vec![0u8; len];
        {
            let mut file = self.file.lock();
            file.seek(SeekFrom::Start(offset))
                .map_err(|e| Error::io(format!("seek in {}", self.path), e))?;
            file.read_exact(&mut buf)
                .map_err(|e| Error::io(format!("read_at in {}", self.path), e))?;
        }
        self.stats.record_read(len as u64);
        Ok(Bytes::from(buf))
    }

    fn size(&self) -> u64 {
        self.size
    }
}

impl Vfs for StdFs {
    fn create(&self, path: &str) -> Result<Box<dyn WritableFile>> {
        let file = fs::File::create(path).map_err(|e| Error::io(format!("create {path}"), e))?;
        self.stats.record_create();
        Ok(Box::new(StdWritable {
            writer: BufWriter::new(file),
            len: 0,
            stats: Arc::clone(&self.stats),
            fsync_enabled: self.fsync_enabled,
            path: path.to_string(),
        }))
    }

    fn open(&self, path: &str) -> Result<Arc<dyn RandomAccessFile>> {
        let file = fs::File::open(path).map_err(|e| Error::io(format!("open {path}"), e))?;
        let size = file
            .metadata()
            .map_err(|e| Error::io(format!("stat {path}"), e))?
            .len();
        Ok(Arc::new(StdReadable {
            file: Mutex::new(file),
            size,
            stats: Arc::clone(&self.stats),
            path: path.to_string(),
        }))
    }

    fn read_all(&self, path: &str) -> Result<Bytes> {
        let data = fs::read(path).map_err(|e| Error::io(format!("read_all {path}"), e))?;
        self.stats.record_read(data.len() as u64);
        Ok(Bytes::from(data))
    }

    fn write_all(&self, path: &str, data: &[u8]) -> Result<()> {
        // The engine relies on write_all being durable once it returns
        // (it feeds write-temp-then-rename sequences), so the file data
        // is fsynced here rather than left to the page cache.
        let mut file =
            fs::File::create(path).map_err(|e| Error::io(format!("write_all {path}"), e))?;
        file.write_all(data)
            .map_err(|e| Error::io(format!("write_all {path}"), e))?;
        if self.fsync_enabled {
            file.sync_data()
                .map_err(|e| Error::io(format!("fsync {path}"), e))?;
        }
        self.stats.record_create();
        self.stats.record_write(data.len() as u64);
        Ok(())
    }

    fn delete(&self, path: &str) -> Result<()> {
        fs::remove_file(path).map_err(|e| Error::io(format!("delete {path}"), e))?;
        self.stats.record_delete();
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        fs::rename(from, to).map_err(|e| Error::io(format!("rename {from} -> {to}"), e))
    }

    fn exists(&self, path: &str) -> bool {
        Path::new(path).is_file()
    }

    fn list(&self, dir: &str) -> Result<Vec<String>> {
        let mut out = Vec::new();
        let entries = fs::read_dir(dir).map_err(|e| Error::io(format!("list {dir}"), e))?;
        for entry in entries {
            let entry = entry.map_err(|e| Error::io(format!("list {dir}"), e))?;
            if entry.path().is_file() {
                if let Some(name) = entry.file_name().to_str() {
                    out.push(name.to_string());
                }
            }
        }
        Ok(out)
    }

    fn mkdir_all(&self, path: &str) -> Result<()> {
        fs::create_dir_all(path).map_err(|e| Error::io(format!("mkdir_all {path}"), e))
    }

    fn sync_dir(&self, dir: &str) -> Result<()> {
        if self.fsync_enabled {
            fs::File::open(dir)
                .and_then(|d| d.sync_all())
                .map_err(|e| Error::io(format!("sync_dir {dir}"), e))?;
            self.stats.record_sync();
        }
        Ok(())
    }

    fn file_size(&self, path: &str) -> Result<u64> {
        Ok(fs::metadata(path)
            .map_err(|e| Error::io(format!("stat {path}"), e))?
            .len())
    }

    fn io_stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join;
    use crate::temp::TempDir;

    #[test]
    fn sync_with_fsync_enabled_succeeds() {
        let tmp = TempDir::new("stdfs-fsync");
        let fs = StdFs::new(true);
        let mut f = fs.create(&join(tmp.path_str(), "f")).unwrap();
        f.append(b"data").unwrap();
        f.sync().unwrap();
        f.finish().unwrap();
        assert_eq!(fs.io_stats().syncs(), 1);
    }

    #[test]
    fn buffered_data_visible_after_finish() {
        let tmp = TempDir::new("stdfs-buffer");
        let fs = StdFs::new(false);
        let p = join(tmp.path_str(), "f");
        let mut f = fs.create(&p).unwrap();
        f.append(&[9u8; 10_000]).unwrap(); // larger than one BufWriter chunk boundary case
        f.finish().unwrap();
        drop(f);
        assert_eq!(fs.read_all(&p).unwrap().len(), 10_000);
    }

    #[test]
    fn concurrent_positional_reads() {
        let tmp = TempDir::new("stdfs-concurrent");
        let fs = StdFs::new(false);
        let p = join(tmp.path_str(), "f");
        let payload: Vec<u8> = (0..255u8).cycle().take(8192).collect();
        fs.write_all(&p, &payload).unwrap();
        let r = fs.open(&p).unwrap();
        std::thread::scope(|s| {
            for t in 0..4 {
                let r = &r;
                let payload = &payload;
                s.spawn(move || {
                    for i in 0..100 {
                        let off = (t * 100 + i) % 8000;
                        let got = r.read_at(off as u64, 64).unwrap();
                        assert_eq!(&got[..], &payload[off..off + 64]);
                    }
                });
            }
        });
    }
}
