//! Self-cleaning temporary directories for tests and benchmarks.
//!
//! Implemented here (rather than pulling in the `tempfile` crate) to keep
//! the dependency set inside the approved list. Uniqueness comes from the
//! process id plus a process-wide counter plus a caller tag.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A directory under the system temp root, removed (recursively) on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create a fresh directory whose name embeds `tag`.
    ///
    /// Panics if the directory cannot be created — temp-dir failure in a
    /// test harness is unrecoverable and should fail loudly.
    pub fn new(tag: &str) -> TempDir {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("acheron-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path)
            .unwrap_or_else(|e| panic!("creating temp dir {}: {e}", path.display()));
        TempDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The directory path as a UTF-8 string (temp roots on supported
    /// platforms are UTF-8; panics otherwise).
    pub fn path_str(&self) -> &str {
        self.path.to_str().expect("temp dir path is not UTF-8")
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        // Best effort; leaking a temp dir on failure is acceptable.
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_removes() {
        let path = {
            let t = TempDir::new("unit");
            assert!(t.path().is_dir());
            std::fs::write(t.path().join("f"), b"x").unwrap();
            t.path().to_path_buf()
        };
        assert!(!path.exists(), "dir must be removed on drop");
    }

    #[test]
    fn two_dirs_are_distinct() {
        let a = TempDir::new("same-tag");
        let b = TempDir::new("same-tag");
        assert_ne!(a.path(), b.path());
    }
}
