//! Fault injection: a [`Vfs`] wrapper that breaks on purpose.
//!
//! [`FaultVfs`] wraps any inner filesystem and lets tests inject three
//! classes of failure, deterministically (every random choice comes
//! from a caller-provided seed):
//!
//! * **Errors** — any operation class (`open`, `append`, `sync`,
//!   `rename`, `delete`, …) can be made to fail, filtered by a
//!   path substring, a skip count, a repetition count, and a seeded
//!   probability.
//! * **Torn writes** — an `append` persists only a prefix of its bytes
//!   and then reports failure, modelling a write cut short by a crash
//!   or a full device.
//! * **Power cuts** — the wrapper tracks, per file, how many bytes have
//!   been durably synced. A simulated power cut discards everything
//!   after the durable prefix (or, in [`CutDurability::TornTail`] mode,
//!   keeps a seeded-random slice of the unsynced suffix, the way a
//!   physical disk persists some sectors of an in-flight write and not
//!   others). After the cut every operation fails until [`reboot`]
//!   restores service on the surviving bytes.
//!
//! The durability model, in terms a storage engine understands:
//!
//! * `WritableFile::append` lands in the page cache: readable
//!   immediately, durable only after the next successful
//!   `WritableFile::sync`.
//! * `Vfs::write_all` and `Vfs::rename` are treated as atomic and
//!   durable (the engine uses them only in write-temp-then-rename
//!   sequences: the CURRENT pointer and WAL tear healing).
//! * `Vfs::delete` and `Vfs::sync_dir` are likewise durable at the
//!   instant they happen; `sync_dir` is therefore a model no-op, kept
//!   injectable so tests can fail it like a dying disk would.
//! * A file created and never synced does not survive a power cut at
//!   all (its directory entry was never persisted either).
//!
//! Syncs and renames are the engine's *durability points* — the
//! instants at which crash-recovery behaviour can change. The wrapper
//! numbers them, and [`FaultVfs::arm_power_cut_at`] crashes the world
//! at exactly the n-th one, which is how the crash-recovery harness in
//! `acheron-core` enumerates every interesting crash instant.
//!
//! Limitations (deliberate, matching how the engine uses the VFS): the
//! durable-length ledger is keyed by path, so renaming a file that has
//! an open writer with unsynced bytes would mis-track it. The engine
//! never does that — appended files (WALs, SSTs) are written in place
//! under their final names.
//!
//! [`reboot`]: FaultVfs::reboot

use std::collections::BTreeMap;
use std::sync::Arc;

use acheron_types::{Error, Result};
use bytes::Bytes;
use parking_lot::Mutex;

use crate::stats::IoStats;
use crate::{RandomAccessFile, Vfs, WritableFile};

/// Operation classes a [`FaultRule`] can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// `Vfs::create`.
    Create,
    /// `Vfs::open`.
    Open,
    /// `Vfs::read_all` and `RandomAccessFile::read_at`.
    Read,
    /// `Vfs::write_all`.
    WriteAll,
    /// `WritableFile::append`.
    Append,
    /// `WritableFile::sync`.
    Sync,
    /// `Vfs::rename`.
    Rename,
    /// `Vfs::delete`.
    Delete,
    /// `Vfs::sync_dir`.
    SyncDir,
}

/// What happens when a rule fires.
#[derive(Debug, Clone)]
pub enum FaultKind {
    /// The operation fails with an injected I/O error; no bytes move.
    Error,
    /// Only for [`FaultOp::Append`]: persist the first `keep_bytes`
    /// bytes of the payload, then fail the call.
    TornWrite {
        /// Bytes of the payload that land before the failure.
        keep_bytes: usize,
    },
    /// Simulate a power cut instead of performing the operation: all
    /// unsynced bytes are lost and every subsequent call fails until
    /// [`FaultVfs::reboot`].
    PowerCut,
}

/// One injection rule: *which* operations break, and *how*.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// Operation class the rule applies to.
    pub op: FaultOp,
    /// Only paths containing this substring match (empty = all paths).
    pub path_contains: String,
    /// Skip this many matching operations before firing.
    pub after: u64,
    /// Fire for at most this many matching operations (then disarm).
    pub count: u64,
    /// Probability of firing per matched operation, in parts per
    /// million (1_000_000 = always). Drawn from the seeded generator,
    /// so runs are reproducible.
    pub probability_ppm: u32,
    /// Failure injected when the rule fires.
    pub kind: FaultKind,
}

impl FaultRule {
    /// A rule that always fires on every matching operation.
    pub fn new(op: FaultOp, kind: FaultKind) -> FaultRule {
        FaultRule {
            op,
            path_contains: String::new(),
            after: 0,
            count: u64::MAX,
            probability_ppm: 1_000_000,
            kind,
        }
    }

    /// Restrict the rule to paths containing `fragment`.
    pub fn on_path(mut self, fragment: &str) -> FaultRule {
        self.path_contains = fragment.to_string();
        self
    }

    /// Skip the first `n` matching operations.
    pub fn after(mut self, n: u64) -> FaultRule {
        self.after = n;
        self
    }

    /// Fire at most `n` times.
    pub fn times(mut self, n: u64) -> FaultRule {
        self.count = n;
        self
    }

    /// Fire with the given probability (parts per million).
    pub fn with_probability_ppm(mut self, ppm: u32) -> FaultRule {
        self.probability_ppm = ppm;
        self
    }
}

/// What a power cut does to each file's unsynced suffix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CutDurability {
    /// Drop every byte past the durable prefix (write-back cache lost
    /// wholesale).
    #[default]
    DropUnsynced,
    /// Keep a seeded-random prefix of the unsynced suffix — the
    /// torn-tail behaviour of a real disk that persisted some sectors
    /// of an in-flight write. Exercises checksum-framed tail recovery.
    TornTail,
}

struct ArmedRule {
    rule: FaultRule,
    seen: u64,
    fired: u64,
}

/// Per-file durability ledger entry.
struct DurableFile {
    /// Bytes guaranteed to survive a power cut.
    synced_len: u64,
    /// Whether the path existed durably before the current `create`
    /// truncated it. Never-synced files that did not pre-exist vanish
    /// entirely at a cut.
    existed_before: bool,
}

struct FaultState {
    rules: Vec<ArmedRule>,
    rng: u64,
    crashed: bool,
    files: BTreeMap<String, DurableFile>,
    points: u64,
    cut_at_point: Option<u64>,
    cut_mode: CutDurability,
}

impl FaultState {
    fn next_rand(&mut self) -> u64 {
        // xorshift64: tiny, seedable, dependency-free. Quality is ample
        // for fault scheduling.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }
}

/// A fault-injecting [`Vfs`] wrapper. See the module docs for the
/// failure model. Clones share state, like two handles to one disk.
#[derive(Clone)]
pub struct FaultVfs {
    inner: Arc<dyn Vfs>,
    state: Arc<Mutex<FaultState>>,
}

fn injected(op: &str, path: &str) -> Error {
    Error::io(
        format!("fault injection: {op} {path}"),
        std::io::Error::other("injected fault"),
    )
}

fn powered_off(op: &str, path: &str) -> Error {
    Error::io(
        format!("{op} {path}"),
        std::io::Error::other("simulated power loss (reboot the FaultVfs to continue)"),
    )
}

impl FaultVfs {
    /// Wrap `inner` with no faults armed and seed 0.
    pub fn new(inner: Arc<dyn Vfs>) -> FaultVfs {
        FaultVfs::with_seed(inner, 0)
    }

    /// Wrap `inner`; every probabilistic choice derives from `seed`.
    pub fn with_seed(inner: Arc<dyn Vfs>, seed: u64) -> FaultVfs {
        FaultVfs {
            inner,
            state: Arc::new(Mutex::new(FaultState {
                rules: Vec::new(),
                // xorshift must not start at 0.
                rng: seed | 1,
                crashed: false,
                files: BTreeMap::new(),
                points: 0,
                cut_at_point: None,
                cut_mode: CutDurability::default(),
            })),
        }
    }

    /// Arm an injection rule.
    pub fn inject(&self, rule: FaultRule) {
        self.state.lock().rules.push(ArmedRule {
            rule,
            seen: 0,
            fired: 0,
        });
    }

    /// Disarm every rule (armed power cuts stay armed).
    pub fn clear_faults(&self) {
        self.state.lock().rules.clear();
    }

    /// Choose what a power cut does to unsynced suffixes.
    pub fn set_cut_durability(&self, mode: CutDurability) {
        self.state.lock().cut_mode = mode;
    }

    /// Durability points (syncs + renames) observed so far.
    pub fn durability_points(&self) -> u64 {
        self.state.lock().points
    }

    /// Reset the durability-point counter to zero.
    pub fn reset_points(&self) {
        self.state.lock().points = 0;
    }

    /// Cut power at the `point`-th durability point from now (0 = the
    /// very next sync or rename), *instead of* performing that
    /// operation.
    pub fn arm_power_cut_at(&self, point: u64) {
        self.state.lock().cut_at_point = Some(point);
    }

    /// Cut power immediately.
    pub fn power_cut(&self) {
        let mut st = self.state.lock();
        Self::do_power_cut(&self.inner, &mut st);
    }

    /// Whether a power cut has happened and service is down.
    pub fn has_crashed(&self) -> bool {
        self.state.lock().crashed
    }

    /// Restore service on the surviving bytes: clears the crashed flag,
    /// the armed cut, and all rules. The durability ledger restarts
    /// empty (everything on the rebooted disk is durable).
    pub fn reboot(&self) {
        let mut st = self.state.lock();
        st.crashed = false;
        st.cut_at_point = None;
        st.rules.clear();
        st.files.clear();
    }

    fn do_power_cut(inner: &Arc<dyn Vfs>, st: &mut FaultState) {
        if st.crashed {
            return;
        }
        let paths: Vec<String> = st.files.keys().cloned().collect();
        for path in paths {
            let dur = &st.files[&path];
            let (synced_len, existed_before) = (dur.synced_len, dur.existed_before);
            let Ok(actual) = inner.file_size(&path) else {
                continue;
            };
            if actual <= synced_len {
                continue;
            }
            let mut keep = synced_len;
            if st.cut_mode == CutDurability::TornTail {
                let tail = actual - synced_len;
                keep += st.next_rand() % (tail + 1);
            }
            if keep == 0 && !existed_before {
                let _ = inner.delete(&path);
            } else {
                // Rewriting severs any live writer handle in MemFs —
                // exactly the post-crash reality where the old process'
                // file descriptors are gone.
                if let Ok(data) = inner.read_all(&path) {
                    let _ = inner.write_all(&path, &data[..keep as usize]);
                }
            }
        }
        st.files.clear();
        st.crashed = true;
        st.cut_at_point = None;
    }

    /// Gate one operation: power state, armed cut, then rules. Returns
    /// the rule kind that fired, if any (power cuts are executed here).
    fn gate(&self, op: FaultOp, opname: &str, path: &str) -> Result<Option<FaultKind>> {
        let mut st = self.state.lock();
        if st.crashed {
            return Err(powered_off(opname, path));
        }
        if matches!(op, FaultOp::Sync | FaultOp::Rename) {
            let point = st.points;
            st.points += 1;
            if st.cut_at_point == Some(point) {
                Self::do_power_cut(&self.inner, &mut st);
                return Err(powered_off(opname, path));
            }
        }
        let mut fired: Option<FaultKind> = None;
        for i in 0..st.rules.len() {
            let matches_rule = {
                let r = &st.rules[i].rule;
                r.op == op && (r.path_contains.is_empty() || path.contains(&r.path_contains))
            };
            if !matches_rule {
                continue;
            }
            st.rules[i].seen += 1;
            let (past_skip, live) = {
                let ar = &st.rules[i];
                (ar.seen > ar.rule.after, ar.fired < ar.rule.count)
            };
            if !past_skip || !live {
                continue;
            }
            let ppm = st.rules[i].rule.probability_ppm;
            if ppm < 1_000_000 && st.next_rand() % 1_000_000 >= u64::from(ppm) {
                continue;
            }
            st.rules[i].fired += 1;
            fired = Some(st.rules[i].rule.kind.clone());
            break;
        }
        match fired {
            Some(FaultKind::PowerCut) => {
                Self::do_power_cut(&self.inner, &mut st);
                Err(powered_off(opname, path))
            }
            other => Ok(other),
        }
    }

    fn mark_synced(&self, path: &str, len: u64) {
        let mut st = self.state.lock();
        if let Some(f) = st.files.get_mut(path) {
            f.synced_len = f.synced_len.max(len);
        } else {
            st.files.insert(
                path.to_string(),
                DurableFile {
                    synced_len: len,
                    existed_before: true,
                },
            );
        }
    }
}

struct FaultWritable {
    path: String,
    inner: Box<dyn WritableFile>,
    vfs: FaultVfs,
}

impl WritableFile for FaultWritable {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        match self.vfs.gate(FaultOp::Append, "append", &self.path)? {
            None => self.inner.append(data),
            Some(FaultKind::TornWrite { keep_bytes }) => {
                let keep = keep_bytes.min(data.len());
                if keep > 0 {
                    self.inner.append(&data[..keep])?;
                }
                Err(injected("torn append", &self.path))
            }
            Some(_) => Err(injected("append", &self.path)),
        }
    }

    fn sync(&mut self) -> Result<()> {
        if self.vfs.gate(FaultOp::Sync, "sync", &self.path)?.is_some() {
            return Err(injected("sync", &self.path));
        }
        self.inner.sync()?;
        self.vfs.mark_synced(&self.path, self.inner.len());
        Ok(())
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn finish(&mut self) -> Result<()> {
        if self.vfs.state.lock().crashed {
            return Err(powered_off("finish", &self.path));
        }
        self.inner.finish()
    }
}

struct FaultReadable {
    path: String,
    inner: Arc<dyn RandomAccessFile>,
    vfs: FaultVfs,
}

impl RandomAccessFile for FaultReadable {
    fn read_at(&self, offset: u64, len: usize) -> Result<Bytes> {
        if self
            .vfs
            .gate(FaultOp::Read, "read_at", &self.path)?
            .is_some()
        {
            return Err(injected("read_at", &self.path));
        }
        self.inner.read_at(offset, len)
    }

    fn size(&self) -> u64 {
        self.inner.size()
    }
}

impl Vfs for FaultVfs {
    fn create(&self, path: &str) -> Result<Box<dyn WritableFile>> {
        if self.gate(FaultOp::Create, "create", path)?.is_some() {
            return Err(injected("create", path));
        }
        let existed_before = {
            let st = self.state.lock();
            // Durably existed: present on the inner fs and not a file
            // we created this epoch without ever syncing.
            self.inner.exists(path)
                && st
                    .files
                    .get(path)
                    .is_none_or(|f| f.synced_len > 0 || f.existed_before)
        };
        let file = self.inner.create(path)?;
        self.state.lock().files.insert(
            path.to_string(),
            DurableFile {
                synced_len: 0,
                existed_before,
            },
        );
        Ok(Box::new(FaultWritable {
            path: path.to_string(),
            inner: file,
            vfs: self.clone(),
        }))
    }

    fn open(&self, path: &str) -> Result<Arc<dyn RandomAccessFile>> {
        if self.gate(FaultOp::Open, "open", path)?.is_some() {
            return Err(injected("open", path));
        }
        let inner = self.inner.open(path)?;
        Ok(Arc::new(FaultReadable {
            path: path.to_string(),
            inner,
            vfs: self.clone(),
        }))
    }

    fn read_all(&self, path: &str) -> Result<Bytes> {
        if self.gate(FaultOp::Read, "read_all", path)?.is_some() {
            return Err(injected("read_all", path));
        }
        self.inner.read_all(path)
    }

    fn write_all(&self, path: &str, data: &[u8]) -> Result<()> {
        if self.gate(FaultOp::WriteAll, "write_all", path)?.is_some() {
            return Err(injected("write_all", path));
        }
        self.inner.write_all(path, data)?;
        // write_all is modelled as atomic + durable.
        let mut st = self.state.lock();
        st.files.insert(
            path.to_string(),
            DurableFile {
                synced_len: data.len() as u64,
                existed_before: true,
            },
        );
        Ok(())
    }

    fn delete(&self, path: &str) -> Result<()> {
        if self.gate(FaultOp::Delete, "delete", path)?.is_some() {
            return Err(injected("delete", path));
        }
        self.inner.delete(path)?;
        self.state.lock().files.remove(path);
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        if self.gate(FaultOp::Rename, "rename", from)?.is_some() {
            return Err(injected("rename", from));
        }
        self.inner.rename(from, to)?;
        // Atomic + durable; the ledger entry follows the file.
        let mut st = self.state.lock();
        let entry = st.files.remove(from).unwrap_or(DurableFile {
            synced_len: self.inner.file_size(to).unwrap_or(0),
            existed_before: true,
        });
        st.files.insert(to.to_string(), entry);
        Ok(())
    }

    fn exists(&self, path: &str) -> bool {
        !self.state.lock().crashed && self.inner.exists(path)
    }

    fn list(&self, dir: &str) -> Result<Vec<String>> {
        if self.state.lock().crashed {
            return Err(powered_off("list", dir));
        }
        self.inner.list(dir)
    }

    fn mkdir_all(&self, path: &str) -> Result<()> {
        if self.state.lock().crashed {
            return Err(powered_off("mkdir_all", path));
        }
        self.inner.mkdir_all(path)
    }

    fn sync_dir(&self, dir: &str) -> Result<()> {
        // Not a durability point: the model already makes deletes and
        // renames durable at the instant they happen, so a cut here
        // exposes no state a cut at the neighbouring operations cannot.
        // Error injection still applies — a dying disk can fail the
        // directory fsync like any other call.
        if self.gate(FaultOp::SyncDir, "sync_dir", dir)?.is_some() {
            return Err(injected("sync_dir", dir));
        }
        self.inner.sync_dir(dir)
    }

    fn file_size(&self, path: &str) -> Result<u64> {
        if self.state.lock().crashed {
            return Err(powered_off("file_size", path));
        }
        self.inner.file_size(path)
    }

    fn io_stats(&self) -> Arc<IoStats> {
        self.inner.io_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemFs;

    fn fault_fs() -> (Arc<MemFs>, FaultVfs) {
        let mem = Arc::new(MemFs::new());
        let fv = FaultVfs::with_seed(mem.clone() as Arc<dyn Vfs>, 42);
        (mem, fv)
    }

    #[test]
    fn error_rule_fires_with_skip_and_count() {
        let (_mem, fs) = fault_fs();
        fs.inject(
            FaultRule::new(FaultOp::WriteAll, FaultKind::Error)
                .after(1)
                .times(2),
        );
        fs.write_all("a", b"x").unwrap(); // skipped
        assert!(fs.write_all("b", b"x").is_err()); // fires 1
        assert!(fs.write_all("c", b"x").is_err()); // fires 2
        fs.write_all("d", b"x").unwrap(); // exhausted
        assert!(!fs.exists("b"), "failed write must not land");
    }

    #[test]
    fn path_filter_restricts_rule() {
        let (_mem, fs) = fault_fs();
        fs.inject(FaultRule::new(FaultOp::Delete, FaultKind::Error).on_path(".log"));
        fs.write_all("db/000001.log", b"x").unwrap();
        fs.write_all("db/000002.sst", b"x").unwrap();
        assert!(fs.delete("db/000001.log").is_err());
        fs.delete("db/000002.sst").unwrap();
    }

    #[test]
    fn seeded_probability_is_deterministic() {
        let run = |seed| {
            let mem = Arc::new(MemFs::new());
            let fs = FaultVfs::with_seed(mem as Arc<dyn Vfs>, seed);
            fs.inject(
                FaultRule::new(FaultOp::WriteAll, FaultKind::Error).with_probability_ppm(500_000),
            );
            (0..32)
                .map(|i| fs.write_all(&format!("f{i}"), b"x").is_err())
                .collect::<Vec<_>>()
        };
        let a = run(7);
        assert_eq!(a, run(7), "same seed, same faults");
        assert!(
            a.iter().any(|&e| e) && !a.iter().all(|&e| e),
            "p=0.5 should mix"
        );
        assert_ne!(a, run(8), "different seed should (here) differ");
    }

    #[test]
    fn torn_write_keeps_prefix() {
        let (_mem, fs) = fault_fs();
        let mut f = fs.create("t").unwrap();
        f.append(b"durable|").unwrap();
        fs.inject(FaultRule::new(
            FaultOp::Append,
            FaultKind::TornWrite { keep_bytes: 3 },
        ));
        assert!(f.append(b"abcdef").is_err());
        assert_eq!(&fs.read_all("t").unwrap()[..], b"durable|abc");
    }

    #[test]
    fn power_cut_drops_unsynced_suffix() {
        let (_mem, fs) = fault_fs();
        let mut f = fs.create("t").unwrap();
        f.append(b"synced").unwrap();
        f.sync().unwrap();
        f.append(b"-lost").unwrap();
        assert_eq!(
            &fs.read_all("t").unwrap()[..],
            b"synced-lost",
            "page cache is readable"
        );
        fs.power_cut();
        assert!(fs.has_crashed());
        assert!(fs.read_all("t").is_err(), "no service while crashed");
        assert!(f.append(b"x").is_err(), "old handles are dead");
        fs.reboot();
        assert_eq!(&fs.read_all("t").unwrap()[..], b"synced");
    }

    #[test]
    fn never_synced_file_vanishes_at_cut() {
        let (_mem, fs) = fault_fs();
        let mut f = fs.create("fresh").unwrap();
        f.append(b"bytes").unwrap();
        fs.power_cut();
        fs.reboot();
        assert!(!fs.exists("fresh"));
    }

    #[test]
    fn write_all_and_rename_are_durable() {
        let (_mem, fs) = fault_fs();
        fs.write_all("cur.tmp", b"MANIFEST-000001").unwrap();
        fs.rename("cur.tmp", "cur").unwrap();
        fs.power_cut();
        fs.reboot();
        assert_eq!(&fs.read_all("cur").unwrap()[..], b"MANIFEST-000001");
    }

    #[test]
    fn create_truncation_of_durable_file_survives_as_empty() {
        let (_mem, fs) = fault_fs();
        fs.write_all("f", b"old").unwrap();
        let mut w = fs.create("f").unwrap();
        w.append(b"new-unsynced").unwrap();
        fs.power_cut();
        fs.reboot();
        // The truncation is durable (the engine never recreates live
        // files, so either convention works; this one is documented).
        assert!(fs.exists("f"));
        assert_eq!(fs.file_size("f").unwrap(), 0);
    }

    #[test]
    fn armed_cut_fires_at_exact_durability_point() {
        let (_mem, fs) = fault_fs();
        let mut f = fs.create("t").unwrap();
        // Points: sync(0) sync(1) rename(2).
        fs.arm_power_cut_at(1);
        f.append(b"one").unwrap();
        f.sync().unwrap(); // point 0
        f.append(b"two").unwrap();
        assert!(f.sync().is_err(), "point 1 is the cut");
        assert!(fs.has_crashed());
        fs.reboot();
        assert_eq!(&fs.read_all("t").unwrap()[..], b"one");
        assert_eq!(fs.durability_points(), 2, "the cut point itself is counted");
    }

    #[test]
    fn torn_tail_cut_keeps_random_slice_of_unsynced_suffix() {
        for seed in 1..32u64 {
            let mem = Arc::new(MemFs::new());
            let fs = FaultVfs::with_seed(mem as Arc<dyn Vfs>, seed);
            fs.set_cut_durability(CutDurability::TornTail);
            let mut f = fs.create("t").unwrap();
            f.append(b"keep").unwrap();
            f.sync().unwrap();
            f.append(b"maybe").unwrap();
            fs.power_cut();
            fs.reboot();
            let data = fs.read_all("t").unwrap();
            assert!(data.len() >= 4 && data.len() <= 9, "len {}", data.len());
            assert!(b"keepmaybe".starts_with(&data[..]), "must be a prefix");
        }
    }

    #[test]
    fn sync_dir_errors_are_injectable() {
        let (_mem, fs) = fault_fs();
        fs.mkdir_all("db").unwrap();
        fs.sync_dir("db").unwrap();
        fs.inject(FaultRule::new(FaultOp::SyncDir, FaultKind::Error).times(1));
        assert!(fs.sync_dir("db").is_err());
        fs.sync_dir("db").unwrap();
        // Directory syncs are not durability points in this model.
        assert_eq!(fs.durability_points(), 0);
    }

    #[test]
    fn reboot_restores_full_service() {
        let (_mem, fs) = fault_fs();
        fs.inject(FaultRule::new(FaultOp::Create, FaultKind::Error).after(1));
        fs.power_cut();
        fs.reboot();
        assert!(!fs.has_crashed());
        // Rules were cleared by reboot; creates work again.
        fs.create("a").unwrap();
        fs.create("b").unwrap();
        let mut f = fs.create("c").unwrap();
        f.append(b"x").unwrap();
        f.sync().unwrap();
        assert!(fs.durability_points() > 0);
    }
}
