//! In-memory filesystem.
//!
//! Deterministic, fast, and fully accounted — the default substrate for
//! tests and for the experiment harness. Files are byte vectors behind a
//! lock; directories are implicit (a path "exists" as a directory if it
//! was created with `mkdir_all` or is a prefix of a file path).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use acheron_types::{Error, Result};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};

use crate::stats::IoStats;
use crate::{RandomAccessFile, Vfs, WritableFile};

type FileData = Arc<RwLock<Vec<u8>>>;

#[derive(Default)]
struct State {
    files: BTreeMap<String, FileData>,
    dirs: BTreeSet<String>,
}

/// An in-memory [`Vfs`].
pub struct MemFs {
    state: Arc<Mutex<State>>,
    stats: Arc<IoStats>,
}

impl MemFs {
    /// An empty filesystem with fresh counters.
    pub fn new() -> MemFs {
        MemFs {
            state: Arc::new(Mutex::new(State::default())),
            stats: Arc::new(IoStats::new()),
        }
    }

    /// Total bytes currently stored across all live files — the engine's
    /// *device space footprint*, used for space-amplification measurements.
    pub fn total_file_bytes(&self) -> u64 {
        let state = self.state.lock();
        state.files.values().map(|f| f.read().len() as u64).sum()
    }

    /// Number of live files.
    pub fn file_count(&self) -> usize {
        self.state.lock().files.len()
    }

    fn not_found(path: &str) -> Error {
        Error::io(
            format!("memfs access to {path}"),
            std::io::Error::new(std::io::ErrorKind::NotFound, "no such file"),
        )
    }
}

impl Default for MemFs {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for MemFs {
    /// Clones share the same underlying state and counters (like two
    /// handles to one disk).
    fn clone(&self) -> Self {
        MemFs {
            state: Arc::clone(&self.state),
            stats: Arc::clone(&self.stats),
        }
    }
}

struct MemWritable {
    data: FileData,
    stats: Arc<IoStats>,
}

impl WritableFile for MemWritable {
    fn append(&mut self, bytes: &[u8]) -> Result<()> {
        self.data.write().extend_from_slice(bytes);
        self.stats.record_write(bytes.len() as u64);
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.stats.record_sync();
        Ok(())
    }

    fn len(&self) -> u64 {
        self.data.read().len() as u64
    }

    fn finish(&mut self) -> Result<()> {
        Ok(())
    }
}

struct MemReadable {
    data: FileData,
    stats: Arc<IoStats>,
    path: String,
}

impl RandomAccessFile for MemReadable {
    fn read_at(&self, offset: u64, len: usize) -> Result<Bytes> {
        let data = self.data.read();
        let start = usize::try_from(offset)
            .map_err(|_| Error::corruption(format!("offset {offset} overflows usize")))?;
        let end = start.checked_add(len).ok_or_else(|| {
            Error::corruption(format!(
                "read range overflow at {offset}+{len} in {}",
                self.path
            ))
        })?;
        if end > data.len() {
            return Err(Error::corruption(format!(
                "read past EOF in {}: want [{start}, {end}), file has {} bytes",
                self.path,
                data.len()
            )));
        }
        self.stats.record_read(len as u64);
        Ok(Bytes::copy_from_slice(&data[start..end]))
    }

    fn size(&self) -> u64 {
        self.data.read().len() as u64
    }
}

impl Vfs for MemFs {
    fn create(&self, path: &str) -> Result<Box<dyn WritableFile>> {
        let data: FileData = Arc::new(RwLock::new(Vec::new()));
        self.state
            .lock()
            .files
            .insert(path.to_string(), Arc::clone(&data));
        self.stats.record_create();
        Ok(Box::new(MemWritable {
            data,
            stats: Arc::clone(&self.stats),
        }))
    }

    fn open(&self, path: &str) -> Result<Arc<dyn RandomAccessFile>> {
        let state = self.state.lock();
        let data = state
            .files
            .get(path)
            .cloned()
            .ok_or_else(|| Self::not_found(path))?;
        Ok(Arc::new(MemReadable {
            data,
            stats: Arc::clone(&self.stats),
            path: path.to_string(),
        }))
    }

    fn read_all(&self, path: &str) -> Result<Bytes> {
        let data = {
            let state = self.state.lock();
            state
                .files
                .get(path)
                .cloned()
                .ok_or_else(|| Self::not_found(path))?
        };
        let guard = data.read();
        self.stats.record_read(guard.len() as u64);
        Ok(Bytes::copy_from_slice(&guard))
    }

    fn write_all(&self, path: &str, data: &[u8]) -> Result<()> {
        self.state
            .lock()
            .files
            .insert(path.to_string(), Arc::new(RwLock::new(data.to_vec())));
        self.stats.record_create();
        self.stats.record_write(data.len() as u64);
        Ok(())
    }

    fn delete(&self, path: &str) -> Result<()> {
        let removed = self.state.lock().files.remove(path);
        if removed.is_none() {
            return Err(Self::not_found(path));
        }
        self.stats.record_delete();
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        let mut state = self.state.lock();
        let data = state
            .files
            .remove(from)
            .ok_or_else(|| Self::not_found(from))?;
        state.files.insert(to.to_string(), data);
        Ok(())
    }

    fn exists(&self, path: &str) -> bool {
        self.state.lock().files.contains_key(path)
    }

    fn list(&self, dir: &str) -> Result<Vec<String>> {
        let prefix = if dir.is_empty() || dir.ends_with('/') {
            dir.to_string()
        } else {
            format!("{dir}/")
        };
        let state = self.state.lock();
        Ok(state
            .files
            .range(prefix.clone()..)
            .take_while(|(k, _)| k.starts_with(&prefix))
            .filter_map(|(k, _)| {
                let rest = &k[prefix.len()..];
                // Direct children only.
                if rest.is_empty() || rest.contains('/') {
                    None
                } else {
                    Some(rest.to_string())
                }
            })
            .collect())
    }

    fn mkdir_all(&self, path: &str) -> Result<()> {
        self.state.lock().dirs.insert(path.to_string());
        Ok(())
    }

    fn sync_dir(&self, _dir: &str) -> Result<()> {
        // Directory metadata is always durable in memory.
        self.stats.record_sync();
        Ok(())
    }

    fn file_size(&self, path: &str) -> Result<u64> {
        let state = self.state.lock();
        state
            .files
            .get(path)
            .map(|f| f.read().len() as u64)
            .ok_or_else(|| Self::not_found(path))
    }

    fn io_stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_non_recursive() {
        let fs = MemFs::new();
        fs.write_all("db/a", b"1").unwrap();
        fs.write_all("db/sub/b", b"2").unwrap();
        fs.write_all("dbx/c", b"3").unwrap();
        let mut names = fs.list("db").unwrap();
        names.sort();
        assert_eq!(names, vec!["a".to_string()]);
    }

    #[test]
    fn clone_shares_state() {
        let fs = MemFs::new();
        let fs2 = fs.clone();
        fs.write_all("x", b"abc").unwrap();
        assert!(fs2.exists("x"));
        assert_eq!(fs2.io_stats().bytes_written(), 3);
    }

    #[test]
    fn total_file_bytes_tracks_live_footprint() {
        let fs = MemFs::new();
        fs.write_all("a", &[0u8; 100]).unwrap();
        fs.write_all("b", &[0u8; 50]).unwrap();
        assert_eq!(fs.total_file_bytes(), 150);
        assert_eq!(fs.file_count(), 2);
        fs.delete("a").unwrap();
        assert_eq!(fs.total_file_bytes(), 50);
        assert_eq!(fs.file_count(), 1);
    }

    #[test]
    fn writes_visible_through_open_handle() {
        // An SSTable is written then opened; data must round-trip even if
        // the reader opened the path while the writer object still exists.
        let fs = MemFs::new();
        let mut w = fs.create("t").unwrap();
        w.append(b"abc").unwrap();
        let r = fs.open("t").unwrap();
        w.append(b"def").unwrap();
        assert_eq!(&r.read_at(0, 6).unwrap()[..], b"abcdef");
    }

    #[test]
    fn read_accounting_counts_bytes() {
        let fs = MemFs::new();
        fs.write_all("t", &[7u8; 64]).unwrap();
        let before = fs.io_stats().snapshot();
        let r = fs.open("t").unwrap();
        r.read_at(0, 10).unwrap();
        r.read_at(10, 20).unwrap();
        let delta = fs.io_stats().snapshot() - before;
        assert_eq!(delta.bytes_read, 30);
        assert_eq!(delta.read_ops, 2);
    }
}
