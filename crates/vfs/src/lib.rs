//! Virtual filesystem for the Acheron engine.
//!
//! Every byte the engine reads or writes goes through a [`Vfs`]
//! implementation, which makes the I/O layer swappable and — crucially
//! for the reproduction — *measurable*: the [`stats::IoStats`] attached
//! to a filesystem count device bytes, so write amplification is computed
//! from ground truth rather than estimated.
//!
//! Two implementations are provided:
//!
//! * [`MemFs`] — an in-memory filesystem. Deterministic and fast; used by
//!   tests and by the benchmark harness (the paper's claims are ratios,
//!   which byte accounting reproduces exactly without device noise).
//! * [`StdFs`] — real files through `std::fs`, with optional `fsync`.
//!
//! Both enforce the same semantics (no read past EOF, rename replaces,
//! create truncates), which the conformance test-suite in this crate runs
//! against each implementation.

pub mod fault;
pub mod mem;
pub mod stats;
pub mod std_fs;
pub mod temp;

use std::sync::Arc;

use acheron_types::Result;
use bytes::Bytes;

pub use fault::{CutDurability, FaultKind, FaultOp, FaultRule, FaultVfs};
pub use mem::MemFs;
pub use stats::{IoStats, IoStatsSnapshot};
pub use std_fs::StdFs;
pub use temp::TempDir;

/// A sequentially written file (WAL segment, SSTable under construction).
///
/// `Sync` is required only as a marker so containers holding writers
/// behind locks stay `Sync`; all mutation goes through `&mut self`.
pub trait WritableFile: Send + Sync {
    /// Append bytes at the end of the file.
    fn append(&mut self, data: &[u8]) -> Result<()>;
    /// Durably flush all appended data to the device.
    fn sync(&mut self) -> Result<()>;
    /// Bytes appended so far.
    fn len(&self) -> u64;
    /// True if nothing has been appended.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Finish the file: flush buffers (without necessarily fsyncing).
    fn finish(&mut self) -> Result<()>;
}

/// A random-access file (an immutable SSTable).
pub trait RandomAccessFile: Send + Sync {
    /// Read exactly `len` bytes starting at `offset`.
    ///
    /// Returns a corruption error if the range extends past EOF — a short
    /// read of an SSTable is always a format violation.
    fn read_at(&self, offset: u64, len: usize) -> Result<Bytes>;
    /// Total file size in bytes.
    fn size(&self) -> u64;
}

/// Filesystem operations the engine needs. Paths are UTF-8 strings with
/// `/` separators; implementations may map them to host paths.
pub trait Vfs: Send + Sync {
    /// Create (truncating if present) a writable file.
    fn create(&self, path: &str) -> Result<Box<dyn WritableFile>>;
    /// Open an existing file for random-access reads.
    fn open(&self, path: &str) -> Result<Arc<dyn RandomAccessFile>>;
    /// Read an entire file into memory (manifest, CURRENT pointer).
    fn read_all(&self, path: &str) -> Result<Bytes>;
    /// Write an entire file, replacing any previous contents (used for
    /// the CURRENT pointer: write temp + rename).
    fn write_all(&self, path: &str, data: &[u8]) -> Result<()>;
    /// Delete a file. Deleting a missing file is an error.
    fn delete(&self, path: &str) -> Result<()>;
    /// Atomically rename `from` to `to`, replacing `to` if present.
    fn rename(&self, from: &str, to: &str) -> Result<()>;
    /// True if `path` names an existing file.
    fn exists(&self, path: &str) -> bool;
    /// List file names (not full paths) directly under `dir`.
    fn list(&self, dir: &str) -> Result<Vec<String>>;
    /// Create a directory and its ancestors. Idempotent.
    fn mkdir_all(&self, path: &str) -> Result<()>;
    /// Durably persist the directory entries under `dir`: creates,
    /// deletes, and renames performed inside it are guaranteed to
    /// survive a power cut only after this returns. In-memory
    /// filesystems treat metadata as always durable and may no-op.
    fn sync_dir(&self, dir: &str) -> Result<()>;
    /// Size of the file at `path`.
    fn file_size(&self, path: &str) -> Result<u64>;
    /// The I/O counters for this filesystem.
    fn io_stats(&self) -> Arc<IoStats>;
}

/// Join two path segments with a single `/`.
pub fn join(dir: &str, name: &str) -> String {
    if dir.is_empty() {
        name.to_string()
    } else if dir.ends_with('/') {
        format!("{dir}{name}")
    } else {
        format!("{dir}/{name}")
    }
}

#[cfg(test)]
mod conformance {
    //! The same behavioural suite run against both filesystems.
    use super::*;

    fn suite(fs: &dyn Vfs, root: &str) {
        fs.mkdir_all(root).unwrap();
        let p = join(root, "a.dat");

        // create + append + finish, then read back.
        {
            let mut f = fs.create(&p).unwrap();
            assert!(f.is_empty());
            f.append(b"hello ").unwrap();
            f.append(b"world").unwrap();
            assert_eq!(f.len(), 11);
            f.sync().unwrap();
            f.finish().unwrap();
        }
        assert!(fs.exists(&p));
        assert_eq!(fs.file_size(&p).unwrap(), 11);
        assert_eq!(&fs.read_all(&p).unwrap()[..], b"hello world");

        // Random access.
        let r = fs.open(&p).unwrap();
        assert_eq!(r.size(), 11);
        assert_eq!(&r.read_at(6, 5).unwrap()[..], b"world");
        assert_eq!(&r.read_at(0, 0).unwrap()[..], b"");
        assert!(r.read_at(7, 5).is_err(), "read past EOF must fail");
        assert!(r.read_at(100, 1).is_err());

        // create truncates.
        {
            let mut f = fs.create(&p).unwrap();
            f.append(b"x").unwrap();
            f.finish().unwrap();
        }
        assert_eq!(fs.file_size(&p).unwrap(), 1);

        // rename replaces.
        let q = join(root, "b.dat");
        fs.write_all(&q, b"victim").unwrap();
        fs.rename(&p, &q).unwrap();
        assert!(!fs.exists(&p));
        assert_eq!(&fs.read_all(&q).unwrap()[..], b"x");

        // list sees exactly the live files.
        fs.write_all(&join(root, "c.dat"), b"z").unwrap();
        let mut names = fs.list(root).unwrap();
        names.sort();
        assert_eq!(names, vec!["b.dat".to_string(), "c.dat".to_string()]);

        // sync_dir succeeds on an existing directory.
        fs.sync_dir(root).unwrap();

        // delete.
        fs.delete(&q).unwrap();
        assert!(!fs.exists(&q));
        assert!(fs.delete(&q).is_err(), "double delete must fail");
        assert!(fs.open(&q).is_err(), "open of missing file must fail");
        assert!(fs.read_all(&q).is_err());
        assert!(fs.file_size(&q).is_err());

        // mkdir_all idempotent.
        fs.mkdir_all(root).unwrap();
    }

    #[test]
    fn memfs_conforms() {
        let fs = MemFs::new();
        suite(&fs, "db");
    }

    #[test]
    fn faultvfs_with_no_faults_conforms() {
        // The wrapper must be behaviourally transparent until a fault
        // is armed.
        let fs = FaultVfs::new(Arc::new(MemFs::new()));
        suite(&fs, "db");
    }

    #[test]
    fn stdfs_conforms() {
        let tmp = TempDir::new("vfs-conformance");
        let fs = StdFs::new(false);
        suite(&fs, tmp.path_str());
    }

    #[test]
    fn join_handles_separators() {
        assert_eq!(join("a", "b"), "a/b");
        assert_eq!(join("a/", "b"), "a/b");
        assert_eq!(join("", "b"), "b");
    }
}
