//! Near-sorted key streams, parameterized by the (K, L)-sortedness
//! metric of the group's BoDS benchmark.
//!
//! * `K` — the *fraction* of elements that are out of order, and
//! * `L` — the maximum displacement of an out-of-order element from its
//!   in-order position.
//!
//! `k_fraction = 0` or `l_max = 0` yields a fully sorted stream;
//! `k_fraction = 1` with large `L` approaches a uniform shuffle. LSM
//! ingestion benefits from sortedness (flushed files overlap less, so
//! compactions become trivial moves) — the `exp13_sortedness` experiment
//! measures exactly that.

use rand::prelude::*;

/// Generate a near-sorted permutation of `0..n`.
///
/// Construction (BoDS-style): start from the identity, pick `⌊k·n⌋`
/// positions, and swap each with a partner up to `l` slots away. Both
/// elements of a swap become out-of-order, displaced by at most `l`.
/// Elements already displaced by an earlier swap are never picked again
/// (bounded resampling), so swap chains cannot compound a displacement
/// beyond `l` and the advertised L-bound holds exactly.
pub fn near_sorted_stream(n: u64, k_fraction: f64, l_max: u64, seed: u64) -> Vec<u64> {
    assert!((0.0..=1.0).contains(&k_fraction), "k must be a fraction");
    let mut keys: Vec<u64> = (0..n).collect();
    if n < 2 || k_fraction == 0.0 || l_max == 0 {
        return keys;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let swaps = ((k_fraction * n as f64) / 2.0).round() as u64;
    let mut touched = vec![false; n as usize];
    for _ in 0..swaps {
        for _attempt in 0..8 {
            let i = rng.gen_range(0..n) as usize;
            let displacement = rng.gen_range(1..=l_max) as usize;
            let j = if rng.gen_bool(0.5) && i >= displacement {
                i - displacement
            } else {
                (i + displacement).min(n as usize - 1)
            };
            if i != j && !touched[i] && !touched[j] {
                keys.swap(i, j);
                touched[i] = true;
                touched[j] = true;
                break;
            }
        }
    }
    keys
}

/// Measure the (K, L) of a stream: the fraction of displaced elements
/// and their maximum displacement, against the sorted order.
pub fn measure_sortedness(stream: &[u64]) -> (f64, u64) {
    if stream.is_empty() {
        return (0.0, 0);
    }
    // In-order position of value v is its rank; for a permutation of
    // 0..n the rank equals the value.
    let mut displaced = 0u64;
    let mut max_disp = 0u64;
    for (pos, &v) in stream.iter().enumerate() {
        let disp = (pos as i64 - v as i64).unsigned_abs();
        if disp > 0 {
            displaced += 1;
            max_disp = max_disp.max(disp);
        }
    }
    (displaced as f64 / stream.len() as f64, max_disp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_k_is_identity() {
        let s = near_sorted_stream(1000, 0.0, 100, 1);
        assert_eq!(s, (0..1000).collect::<Vec<_>>());
        let (k, l) = measure_sortedness(&s);
        assert_eq!(k, 0.0);
        assert_eq!(l, 0);
    }

    #[test]
    fn zero_l_is_identity() {
        let s = near_sorted_stream(1000, 0.5, 0, 1);
        assert_eq!(measure_sortedness(&s), (0.0, 0));
    }

    #[test]
    fn stream_is_a_permutation() {
        let mut s = near_sorted_stream(5000, 0.3, 50, 42);
        s.sort_unstable();
        assert_eq!(s, (0..5000).collect::<Vec<_>>());
    }

    #[test]
    fn displacement_bounded_by_l() {
        for l in [1u64, 5, 25] {
            let s = near_sorted_stream(2000, 0.4, l, 7);
            let (_, max_disp) = measure_sortedness(&s);
            // Swap chains can compound displacements slightly, but they
            // stay in the same order of magnitude as L.
            assert!(max_disp <= 3 * l, "L={l} but max displacement {max_disp}");
            assert!(max_disp >= 1);
        }
    }

    #[test]
    fn k_scales_the_disorder() {
        let low = measure_sortedness(&near_sorted_stream(10_000, 0.05, 20, 3)).0;
        let high = measure_sortedness(&near_sorted_stream(10_000, 0.6, 20, 3)).0;
        assert!(low < high, "more swaps, more disorder: {low} vs {high}");
        assert!(low > 0.0);
        assert!(high < 1.0 + f64::EPSILON);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = near_sorted_stream(500, 0.2, 10, 9);
        let b = near_sorted_stream(500, 0.2, 10, 9);
        let c = near_sorted_stream(500, 0.2, 10, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
