//! Operation mixes and the workload generator.

use rand::prelude::*;

use crate::dist::KeyDistribution;
use crate::key_bytes;

/// One generated operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Insert/update; `dkey` is the secondary delete key (`None` = let
    /// the engine stamp the current tick).
    Put {
        /// Sort key.
        key: Vec<u8>,
        /// Value payload.
        value: Vec<u8>,
        /// Optional explicit secondary delete key.
        dkey: Option<u64>,
    },
    /// Point delete.
    Delete {
        /// Sort key.
        key: Vec<u8>,
    },
    /// Point lookup.
    Get {
        /// Sort key.
        key: Vec<u8>,
    },
    /// Short range scan of `len` key ids starting at `key`.
    Scan {
        /// Low bound (inclusive).
        lo: Vec<u8>,
        /// High bound (inclusive).
        hi: Vec<u8>,
    },
    /// Secondary range delete over the delete-key domain.
    RangeDeleteSecondary {
        /// Low delete key (inclusive).
        lo: u64,
        /// High delete key (inclusive).
        hi: u64,
    },
}

/// Percentages of each op type; must sum to 100.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMix {
    /// Percent of ops that are puts.
    pub put_pct: u32,
    /// Percent of ops that are point deletes.
    pub delete_pct: u32,
    /// Percent of ops that are point lookups.
    pub get_pct: u32,
    /// Percent of ops that are range scans.
    pub scan_pct: u32,
}

impl OpMix {
    /// Validate the mix sums to 100.
    pub fn validate(&self) -> bool {
        self.put_pct + self.delete_pct + self.get_pct + self.scan_pct == 100
    }

    /// Insert-only.
    pub fn insert_only() -> OpMix {
        OpMix {
            put_pct: 100,
            delete_pct: 0,
            get_pct: 0,
            scan_pct: 0,
        }
    }

    /// Write-heavy with deletes (the delete-aware papers' staple).
    pub fn write_heavy(delete_pct: u32) -> OpMix {
        OpMix {
            put_pct: 100 - delete_pct,
            delete_pct,
            get_pct: 0,
            scan_pct: 0,
        }
    }

    /// Mixed read/write.
    pub fn mixed(put_pct: u32, delete_pct: u32, get_pct: u32, scan_pct: u32) -> OpMix {
        let m = OpMix {
            put_pct,
            delete_pct,
            get_pct,
            scan_pct,
        };
        assert!(m.validate(), "op mix must sum to 100");
        m
    }
}

/// Everything needed to generate a deterministic op stream.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Op-type percentages.
    pub mix: OpMix,
    /// Key distribution for writes and reads.
    pub dist: KeyDistribution,
    /// Value payload size in bytes.
    pub value_len: usize,
    /// Scan length in key ids.
    pub scan_len: u64,
    /// RNG seed (same seed ⇒ identical stream).
    pub seed: u64,
    /// Only delete keys that were previously inserted.
    pub delete_only_existing: bool,
}

impl WorkloadSpec {
    /// A reasonable default: uniform keys, 64-byte values.
    pub fn new(mix: OpMix, dist: KeyDistribution) -> WorkloadSpec {
        WorkloadSpec {
            mix,
            dist,
            value_len: 64,
            scan_len: 100,
            seed: 0xace0_ace0,
            delete_only_existing: true,
        }
    }
}

/// Deterministic op-stream generator.
pub struct WorkloadGen {
    spec: WorkloadSpec,
    rng: StdRng,
    /// Keys inserted so far (ids), for existing-key deletes/reads.
    inserted: Vec<u64>,
}

impl WorkloadGen {
    /// Build a generator from a spec.
    pub fn new(spec: WorkloadSpec) -> WorkloadGen {
        let rng = StdRng::seed_from_u64(spec.seed);
        WorkloadGen {
            spec,
            rng,
            inserted: Vec::new(),
        }
    }

    /// Value payload for a key (deterministic, compressible-ish).
    fn value_for(&self, id: u64) -> Vec<u8> {
        let mut v = format!("val-{id:016x}-").into_bytes();
        v.resize(self.spec.value_len.max(v.len()), b'.');
        v.truncate(self.spec.value_len.max(1));
        v
    }

    /// Generate the next operation.
    pub fn next_op(&mut self) -> Op {
        let roll = self.rng.gen_range(0..100u32);
        let m = self.spec.mix;
        if roll < m.put_pct {
            let id = self.spec.dist.sample(&mut self.rng);
            self.inserted.push(id);
            let value = self.value_for(id);
            return Op::Put {
                key: key_bytes(id),
                value,
                dkey: None,
            };
        }
        if roll < m.put_pct + m.delete_pct {
            let id = if self.spec.delete_only_existing && !self.inserted.is_empty() {
                let idx = self.rng.gen_range(0..self.inserted.len());
                self.inserted.swap_remove(idx)
            } else {
                self.spec.dist.sample(&mut self.rng)
            };
            return Op::Delete { key: key_bytes(id) };
        }
        if roll < m.put_pct + m.delete_pct + m.get_pct {
            let id = if !self.inserted.is_empty() && self.rng.gen_bool(0.5) {
                self.inserted[self.rng.gen_range(0..self.inserted.len())]
            } else {
                self.spec.dist.sample(&mut self.rng)
            };
            return Op::Get { key: key_bytes(id) };
        }
        let start = self.spec.dist.sample(&mut self.rng);
        Op::Scan {
            lo: key_bytes(start),
            hi: key_bytes(start.saturating_add(self.spec.scan_len)),
        }
    }

    /// Generate `n` operations.
    pub fn take(&mut self, n: usize) -> Vec<Op> {
        (0..n).map(|_| self.next_op()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(mix: OpMix) -> WorkloadSpec {
        WorkloadSpec::new(mix, KeyDistribution::uniform(1000))
    }

    #[test]
    fn mix_validation() {
        assert!(OpMix::insert_only().validate());
        assert!(OpMix::write_heavy(25).validate());
        assert!(!OpMix {
            put_pct: 50,
            delete_pct: 0,
            get_pct: 0,
            scan_pct: 0
        }
        .validate());
    }

    #[test]
    fn generator_is_deterministic() {
        let a = WorkloadGen::new(spec(OpMix::mixed(40, 10, 40, 10))).take(500);
        let b = WorkloadGen::new(spec(OpMix::mixed(40, 10, 40, 10))).take(500);
        assert_eq!(a, b);
    }

    #[test]
    fn mix_proportions_approximately_hold() {
        let ops = WorkloadGen::new(spec(OpMix::mixed(50, 10, 30, 10))).take(10_000);
        let puts = ops.iter().filter(|o| matches!(o, Op::Put { .. })).count();
        let dels = ops
            .iter()
            .filter(|o| matches!(o, Op::Delete { .. }))
            .count();
        let gets = ops.iter().filter(|o| matches!(o, Op::Get { .. })).count();
        let scans = ops.iter().filter(|o| matches!(o, Op::Scan { .. })).count();
        assert!((4_500..5_500).contains(&puts), "puts={puts}");
        assert!((700..1_300).contains(&dels), "dels={dels}");
        assert!((2_500..3_500).contains(&gets), "gets={gets}");
        assert!((700..1_300).contains(&scans), "scans={scans}");
    }

    #[test]
    fn deletes_target_existing_keys() {
        let mut g = WorkloadGen::new(spec(OpMix::write_heavy(30)));
        let ops = g.take(2_000);
        let mut live: std::collections::HashSet<Vec<u8>> = std::collections::HashSet::new();
        let mut valid_deletes = 0;
        let mut deletes = 0;
        for op in &ops {
            match op {
                Op::Put { key, .. } => {
                    live.insert(key.clone());
                }
                Op::Delete { key } => {
                    deletes += 1;
                    if live.contains(key) {
                        valid_deletes += 1;
                    }
                }
                _ => {}
            }
        }
        assert!(deletes > 0);
        // Duplicate uniform draws can re-insert a deleted id, so allow a
        // small slack below 100%.
        assert!(
            valid_deletes as f64 / deletes as f64 > 0.9,
            "{valid_deletes}/{deletes} deletes hit live keys"
        );
    }

    #[test]
    fn values_have_requested_length() {
        let mut s = spec(OpMix::insert_only());
        s.value_len = 100;
        let ops = WorkloadGen::new(s).take(10);
        for op in ops {
            if let Op::Put { value, .. } = op {
                assert_eq!(value.len(), 100);
            }
        }
    }
}
