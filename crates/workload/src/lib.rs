//! Workload generation for the Acheron experiments: key distributions
//! (uniform / Zipfian / sequential), operation mixes, delete models, and
//! a deterministic runner that drives a database and reports throughput.

#![warn(missing_docs)]

pub mod dist;
pub mod ops;
pub mod runner;
pub mod sortedness;

pub use dist::{KeyDistribution, Zipfian};
pub use ops::{Op, OpMix, WorkloadGen, WorkloadSpec};
pub use runner::{run_ops, OpSink, RunReport};
pub use sortedness::{measure_sortedness, near_sorted_stream};

/// Render a numeric key id as a fixed-width, order-preserving byte key.
pub fn key_bytes(id: u64) -> Vec<u8> {
    format!("user{id:012}").into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_bytes_preserve_order() {
        let a = key_bytes(5);
        let b = key_bytes(50);
        let c = key_bytes(500_000_000_000);
        assert!(a < b && b < c);
        assert_eq!(a.len(), b.len());
        assert_eq!(b.len(), c.len());
    }
}
