//! Key-space distributions.

use rand::Rng;

/// A Zipfian sampler over `0..n` (YCSB's construction: Gray et al.'s
//  "Quickly generating billion-record synthetic databases").
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zeta_n: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipfian {
    /// Sampler over `0..n` with skew `theta` in `(0, 1)`; YCSB uses
    /// 0.99.
    pub fn new(n: u64, theta: f64) -> Zipfian {
        assert!(n > 0, "zipfian needs a non-empty key space");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let zeta_n = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zeta_n);
        Zipfian {
            n,
            theta,
            alpha,
            zeta_n,
            eta,
            zeta2,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct sum; key spaces in the experiments are ≤ 10^7.
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Draw one rank (0 = hottest).
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// The configured skew.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Unused-field silencer with meaning: zeta(2) participates in eta.
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

/// How keys are drawn for an operation.
#[derive(Debug, Clone)]
pub enum KeyDistribution {
    /// Uniform over `0..n`.
    Uniform {
        /// Key-space size.
        n: u64,
    },
    /// Zipfian (hot head) over `0..n`.
    Zipfian(Zipfian),
    /// Strictly increasing ids (time-series ingest).
    Sequential {
        /// Next id to hand out.
        next: u64,
    },
}

impl KeyDistribution {
    /// Uniform over `0..n`.
    pub fn uniform(n: u64) -> KeyDistribution {
        KeyDistribution::Uniform { n }
    }

    /// YCSB-style Zipfian over `0..n`.
    pub fn zipfian(n: u64, theta: f64) -> KeyDistribution {
        KeyDistribution::Zipfian(Zipfian::new(n, theta))
    }

    /// Sequential starting at 0.
    pub fn sequential() -> KeyDistribution {
        KeyDistribution::Sequential { next: 0 }
    }

    /// Draw the next key id.
    pub fn sample(&mut self, rng: &mut impl Rng) -> u64 {
        match self {
            KeyDistribution::Uniform { n } => rng.gen_range(0..*n),
            KeyDistribution::Zipfian(z) => z.sample(rng),
            KeyDistribution::Sequential { next } => {
                let id = *next;
                *next += 1;
                id
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn uniform_covers_space() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut d = KeyDistribution::uniform(100);
        let mut seen = [false; 100];
        for _ in 0..10_000 {
            seen[d.sample(&mut rng) as usize] = true;
        }
        assert!(seen.iter().filter(|s| **s).count() > 95);
    }

    #[test]
    fn zipfian_is_skewed_and_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let z = Zipfian::new(10_000, 0.99);
        let mut counts = vec![0u64; 10_000];
        for _ in 0..100_000 {
            let s = z.sample(&mut rng);
            assert!(s < 10_000);
            counts[s as usize] += 1;
        }
        let head: u64 = counts[..100].iter().sum();
        assert!(
            head > 40_000,
            "top 1% of a theta=0.99 zipfian should draw >40% of samples, got {head}"
        );
        // Tail still gets sampled.
        let tail: u64 = counts[5_000..].iter().sum();
        assert!(tail > 0);
    }

    #[test]
    fn zipfian_theta_zero_is_near_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let z = Zipfian::new(1000, 0.0);
        let mut counts = vec![0u64; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let head: u64 = counts[..10].iter().sum();
        assert!(head < 5_000, "theta=0 should not concentrate mass: {head}");
    }

    #[test]
    fn sequential_increments() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut d = KeyDistribution::sequential();
        assert_eq!(d.sample(&mut rng), 0);
        assert_eq!(d.sample(&mut rng), 1);
        assert_eq!(d.sample(&mut rng), 2);
    }

    #[test]
    #[should_panic]
    fn zipfian_rejects_empty_space() {
        Zipfian::new(0, 0.5);
    }
}
