//! Drive a database with an op stream and report what happened.

use std::time::Instant;

use acheron::Db;
use acheron_types::Result;

use crate::ops::Op;

/// Outcome of executing an op stream.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Ops executed.
    pub ops: u64,
    /// Wall-clock seconds.
    pub elapsed_secs: f64,
    /// Point lookups that found a value.
    pub get_hits: u64,
    /// Point lookups that found nothing.
    pub get_misses: u64,
    /// Total entries returned by scans.
    pub scan_rows: u64,
}

impl RunReport {
    /// Operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.elapsed_secs == 0.0 {
            0.0
        } else {
            self.ops as f64 / self.elapsed_secs
        }
    }
}

/// Execute `ops` against `db`, sequentially.
pub fn run_ops(db: &Db, ops: &[Op]) -> Result<RunReport> {
    let mut report = RunReport::default();
    let start = Instant::now();
    for op in ops {
        match op {
            Op::Put { key, value, dkey } => match dkey {
                Some(d) => db.put_with_dkey(key, value, *d)?,
                None => db.put(key, value)?,
            },
            Op::Delete { key } => db.delete(key)?,
            Op::Get { key } => {
                if db.get(key)?.is_some() {
                    report.get_hits += 1;
                } else {
                    report.get_misses += 1;
                }
            }
            Op::Scan { lo, hi } => {
                report.scan_rows += db.scan(lo, hi)?.len() as u64;
            }
            Op::RangeDeleteSecondary { lo, hi } => db.range_delete_secondary(*lo, *hi)?,
        }
        report.ops += 1;
    }
    report.elapsed_secs = start.elapsed().as_secs_f64();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::KeyDistribution;
    use crate::ops::{OpMix, WorkloadGen, WorkloadSpec};
    use acheron::DbOptions;
    use acheron_vfs::MemFs;
    use std::sync::Arc;

    #[test]
    fn runner_executes_a_mixed_stream() {
        let fs = Arc::new(MemFs::new());
        let db = Db::open(fs, "db", DbOptions::small()).unwrap();
        let spec = WorkloadSpec::new(
            OpMix::mixed(50, 10, 30, 10),
            KeyDistribution::uniform(500),
        );
        let ops = WorkloadGen::new(spec).take(3_000);
        let report = run_ops(&db, &ops).unwrap();
        assert_eq!(report.ops, 3_000);
        assert!(report.get_hits + report.get_misses > 0);
        assert!(report.ops_per_sec() > 0.0);
        db.verify_integrity().unwrap();
    }

    #[test]
    fn explicit_dkey_puts_flow_through() {
        let fs = Arc::new(MemFs::new());
        let db = Db::open(fs, "db", DbOptions::small()).unwrap();
        let ops = vec![
            Op::Put { key: b"k".to_vec(), value: b"v".to_vec(), dkey: Some(42) },
            Op::RangeDeleteSecondary { lo: 40, hi: 45 },
            Op::Get { key: b"k".to_vec() },
        ];
        let report = run_ops(&db, &ops).unwrap();
        assert_eq!(report.get_misses, 1, "entry with dkey 42 must be erased");
    }
}
