//! Drive an operation sink with an op stream and report what happened.
//!
//! The sink abstraction ([`OpSink`]) is what lets one seeded workload
//! drive the engine *embedded* (`&Db`) or *over the wire* (the server
//! crate implements [`OpSink`] for its client) without duplicating the
//! driver — and lets tests assert the two paths are result-identical
//! via [`RunReport::check_digest`].

use std::time::Instant;

use acheron::{Db, LatencyHistogram, ShardedDb};
use acheron_types::{checksum, Result};

use crate::ops::Op;

/// Anything a workload can be applied to: the embedded engine, a remote
/// client, or a test double. Reads return their results so callers can
/// validate byte-identical behavior across sinks.
pub trait OpSink {
    /// Insert/update; `dkey = None` lets the sink stamp the current tick.
    fn put(&mut self, key: &[u8], value: &[u8], dkey: Option<u64>) -> Result<()>;
    /// Point delete.
    fn delete(&mut self, key: &[u8]) -> Result<()>;
    /// Point lookup; `None` when the key is absent or deleted.
    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>>;
    /// Inclusive range scan over sort keys, in key order.
    fn scan(&mut self, lo: &[u8], hi: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>>;
    /// Secondary range delete over the delete-key domain.
    fn range_delete_secondary(&mut self, lo: u64, hi: u64) -> Result<()>;
}

impl OpSink for &Db {
    fn put(&mut self, key: &[u8], value: &[u8], dkey: Option<u64>) -> Result<()> {
        match dkey {
            Some(d) => Db::put_with_dkey(self, key, value, d),
            None => Db::put(self, key, value),
        }
    }

    fn delete(&mut self, key: &[u8]) -> Result<()> {
        Db::delete(self, key)
    }

    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        Ok(Db::get(self, key)?.map(|v| v.to_vec()))
    }

    fn scan(&mut self, lo: &[u8], hi: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        Ok(Db::scan(self, lo, hi)?
            .into_iter()
            .map(|(k, v)| (k.to_vec(), v.to_vec()))
            .collect())
    }

    fn range_delete_secondary(&mut self, lo: u64, hi: u64) -> Result<()> {
        Db::range_delete_secondary(self, lo, hi)
    }
}

impl OpSink for &ShardedDb {
    fn put(&mut self, key: &[u8], value: &[u8], dkey: Option<u64>) -> Result<()> {
        match dkey {
            Some(d) => ShardedDb::put_with_dkey(self, key, value, d),
            None => ShardedDb::put(self, key, value),
        }
    }

    fn delete(&mut self, key: &[u8]) -> Result<()> {
        ShardedDb::delete(self, key)
    }

    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        ShardedDb::get(self, key)
    }

    fn scan(&mut self, lo: &[u8], hi: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        ShardedDb::scan(self, lo, hi)
    }

    fn range_delete_secondary(&mut self, lo: u64, hi: u64) -> Result<()> {
        ShardedDb::range_delete_secondary(self, lo, hi)
    }
}

impl<T: OpSink + ?Sized> OpSink for &mut T {
    fn put(&mut self, key: &[u8], value: &[u8], dkey: Option<u64>) -> Result<()> {
        (**self).put(key, value, dkey)
    }

    fn delete(&mut self, key: &[u8]) -> Result<()> {
        (**self).delete(key)
    }

    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        (**self).get(key)
    }

    fn scan(&mut self, lo: &[u8], hi: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        (**self).scan(lo, hi)
    }

    fn range_delete_secondary(&mut self, lo: u64, hi: u64) -> Result<()> {
        (**self).range_delete_secondary(lo, hi)
    }
}

/// Outcome of executing an op stream.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Ops executed.
    pub ops: u64,
    /// Wall-clock seconds.
    pub elapsed_secs: f64,
    /// Point lookups that found a value.
    pub get_hits: u64,
    /// Point lookups that found nothing.
    pub get_misses: u64,
    /// Total entries returned by scans.
    pub scan_rows: u64,
    /// Median per-op latency in microseconds (histogram bucket bound).
    pub op_p50_us: u64,
    /// p99 per-op latency in microseconds (histogram bucket bound).
    pub op_p99_us: u64,
    /// CRC32C over every read result (get outcomes and scan rows, in
    /// stream order). Two sinks given the same op stream are
    /// result-identical iff their digests match.
    pub check_digest: u32,
}

impl RunReport {
    /// Operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.elapsed_secs == 0.0 {
            0.0
        } else {
            self.ops as f64 / self.elapsed_secs
        }
    }
}

/// Execute `ops` against `sink`, sequentially. `&Db` is a sink, so the
/// embedded call is simply `run_ops(&db, &ops)`.
pub fn run_ops<S: OpSink>(mut sink: S, ops: &[Op]) -> Result<RunReport> {
    let mut report = RunReport::default();
    let latency = LatencyHistogram::default();
    let mut digest = 0u32;
    let start = Instant::now();
    for op in ops {
        let op_start = Instant::now();
        match op {
            Op::Put { key, value, dkey } => sink.put(key, value, *dkey)?,
            Op::Delete { key } => sink.delete(key)?,
            Op::Get { key } => match sink.get(key)? {
                Some(v) => {
                    report.get_hits += 1;
                    digest = checksum::extend(digest, b"hit");
                    digest = checksum::extend(digest, &v);
                }
                None => {
                    report.get_misses += 1;
                    digest = checksum::extend(digest, b"miss");
                }
            },
            Op::Scan { lo, hi } => {
                let rows = sink.scan(lo, hi)?;
                report.scan_rows += rows.len() as u64;
                for (k, v) in &rows {
                    digest = checksum::extend(digest, k);
                    digest = checksum::extend(digest, v);
                }
            }
            Op::RangeDeleteSecondary { lo, hi } => sink.range_delete_secondary(*lo, *hi)?,
        }
        latency.record(op_start.elapsed().as_micros() as u64);
        report.ops += 1;
    }
    report.elapsed_secs = start.elapsed().as_secs_f64();
    report.op_p50_us = latency.percentile(50.0);
    report.op_p99_us = latency.percentile(99.0);
    report.check_digest = digest;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::KeyDistribution;
    use crate::ops::{OpMix, WorkloadGen, WorkloadSpec};
    use acheron::DbOptions;
    use acheron_vfs::MemFs;
    use std::sync::Arc;

    #[test]
    fn runner_executes_a_mixed_stream() {
        let fs = Arc::new(MemFs::new());
        let db = Db::open(fs, "db", DbOptions::small()).unwrap();
        let spec = WorkloadSpec::new(OpMix::mixed(50, 10, 30, 10), KeyDistribution::uniform(500));
        let ops = WorkloadGen::new(spec).take(3_000);
        let report = run_ops(&db, &ops).unwrap();
        assert_eq!(report.ops, 3_000);
        assert!(report.get_hits + report.get_misses > 0);
        assert!(report.ops_per_sec() > 0.0);
        assert!(report.op_p99_us >= report.op_p50_us);
        db.verify_integrity().unwrap();
    }

    #[test]
    fn explicit_dkey_puts_flow_through() {
        let fs = Arc::new(MemFs::new());
        let db = Db::open(fs, "db", DbOptions::small()).unwrap();
        let ops = vec![
            Op::Put {
                key: b"k".to_vec(),
                value: b"v".to_vec(),
                dkey: Some(42),
            },
            Op::RangeDeleteSecondary { lo: 40, hi: 45 },
            Op::Get { key: b"k".to_vec() },
        ];
        let report = run_ops(&db, &ops).unwrap();
        assert_eq!(report.get_misses, 1, "entry with dkey 42 must be erased");
    }

    #[test]
    fn digests_detect_divergent_results() {
        // The same seeded stream against identically configured engines
        // digests identically; removing a key changes read results and
        // therefore the digest.
        let ops = WorkloadGen::new(WorkloadSpec::new(
            OpMix::mixed(50, 10, 30, 10),
            KeyDistribution::uniform(300),
        ))
        .take(2_000);
        let open = || Db::open(Arc::new(MemFs::new()), "db", DbOptions::small()).unwrap();
        let (a, b) = (open(), open());
        let ra = run_ops(&a, &ops).unwrap();
        let rb = run_ops(&b, &ops).unwrap();
        assert_eq!(ra.check_digest, rb.check_digest);
        assert_eq!(ra.get_hits, rb.get_hits);

        let c = open();
        let rc = run_ops(&c, &ops[..ops.len() - 1]).unwrap();
        // Dropping the tail op usually changes the digest; at minimum the
        // op count differs — this guards the digest's plumbing, not its
        // collision resistance.
        assert!(rc.ops != ra.ops);
    }
}
