//! Segmented, CRC-framed value log for key-value separation.
//!
//! Values above the engine's separation threshold are appended here at
//! commit time; the tree stores a fixed-size
//! [`ValuePointer`] instead (WiscKey's split, with
//! Acheron's twist that reclamation of dead vlog bytes is bounded by the
//! same `D_th` deadline as tombstone persistence — see the engine's GC).
//!
//! # Frame format
//!
//! Each appended value becomes one self-describing frame:
//!
//! ```text
//! payload_len (u32 LE) | crc32c(payload) (u32 LE, masked) | payload
//! payload := key_len (u32 LE) | key | value
//! ```
//!
//! The frame carries its key so a dereference can verify the pointer
//! resolves to the right record (a dangling or stale pointer fails
//! loudly instead of returning another key's bytes), and so GC can
//! re-associate surviving values with their keys without consulting the
//! tree. A [`ValuePointer`] names the whole frame: `(segment, offset,
//! len)` with `len = 8 + payload_len`.
//!
//! # Durability contract
//!
//! The engine appends frames *before* writing the WAL record that
//! references them and syncs the log head *before* the WAL sync
//! (WAL-then-vlog would admit a committed pointer with no bytes behind
//! it). Recovery therefore treats an unreadable frame behind a replayed
//! pointer exactly like a torn WAL tail: the commit never finished.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::Arc;

use acheron_types::{checksum, Error, Result, ValuePointer};
use acheron_vfs::{RandomAccessFile, Vfs, WritableFile};
use bytes::Bytes;
use parking_lot::Mutex;

/// Bytes of frame header preceding the payload: length + checksum.
pub const FRAME_HEADER: usize = 8;

/// File name of a value-log segment: `vlog-{seg:06}.vlg`.
pub fn segment_file_name(segment: u64) -> String {
    format!("vlog-{segment:06}.vlg")
}

/// Parse a value-log segment file name; `None` for anything else.
pub fn parse_segment_file_name(name: &str) -> Option<u64> {
    name.strip_prefix("vlog-")?
        .strip_suffix(".vlg")?
        .parse()
        .ok()
}

/// Encode one frame for `key`/`value`.
pub fn encode_frame(key: &[u8], value: &[u8]) -> Vec<u8> {
    let payload_len = 4 + key.len() + value.len();
    let mut out = Vec::with_capacity(FRAME_HEADER + payload_len);
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
    out.extend_from_slice(&[0u8; 4]); // crc patched below
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(value);
    let crc = checksum::mask(checksum::crc32c(&out[FRAME_HEADER..]));
    out[4..8].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Decode and verify one complete frame, returning `(key, value)`.
pub fn decode_frame(frame: &Bytes) -> Result<(Bytes, Bytes)> {
    if frame.len() < FRAME_HEADER + 4 {
        return Err(Error::corruption("vlog frame: truncated header"));
    }
    let payload_len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
    if frame.len() != FRAME_HEADER + payload_len {
        return Err(Error::corruption(format!(
            "vlog frame: length mismatch ({} bytes for payload of {payload_len})",
            frame.len()
        )));
    }
    let stored_crc = u32::from_le_bytes(frame[4..8].try_into().unwrap());
    let payload = &frame[FRAME_HEADER..];
    let actual = checksum::mask(checksum::crc32c(payload));
    if actual != stored_crc {
        return Err(Error::corruption("vlog frame: checksum mismatch"));
    }
    let key_len = u32::from_le_bytes(payload[..4].try_into().unwrap()) as usize;
    if 4 + key_len > payload.len() {
        return Err(Error::corruption("vlog frame: key overruns payload"));
    }
    let key = frame.slice(FRAME_HEADER + 4..FRAME_HEADER + 4 + key_len);
    let value = frame.slice(FRAME_HEADER + 4 + key_len..);
    Ok((key, value))
}

/// The append head of the value log: one active segment file, rolled at
/// the configured size. Owned by the engine's commit path (behind the
/// same exclusion that owns the WAL writer) and by vlog GC.
pub struct VlogWriter {
    fs: Arc<dyn Vfs>,
    dir: String,
    segment_bytes: u64,
    segment: u64,
    file: Box<dyn WritableFile>,
    offset: u64,
    /// Frames appended since the last [`VlogWriter::sync`].
    dirty: bool,
}

impl VlogWriter {
    /// Start a fresh segment `segment` under `dir`, rolling to a new
    /// segment whenever the active one reaches `segment_bytes`.
    pub fn create(
        fs: Arc<dyn Vfs>,
        dir: &str,
        segment: u64,
        segment_bytes: u64,
    ) -> Result<VlogWriter> {
        let file = fs.create(&acheron_vfs::join(dir, &segment_file_name(segment)))?;
        Ok(VlogWriter {
            fs,
            dir: dir.to_string(),
            segment_bytes: segment_bytes.max(1),
            segment,
            file,
            offset: 0,
            dirty: false,
        })
    }

    /// Append one `key`/`value` frame, rolling the segment first if the
    /// active one is full. Returns the pointer naming the frame.
    pub fn append(&mut self, key: &[u8], value: &[u8]) -> Result<ValuePointer> {
        if self.offset > 0 && self.offset >= self.segment_bytes {
            self.roll()?;
        }
        let frame = encode_frame(key, value);
        self.file.append(&frame)?;
        let ptr = ValuePointer {
            segment: self.segment,
            offset: self.offset,
            len: frame.len() as u32,
        };
        self.offset += frame.len() as u64;
        self.dirty = true;
        Ok(ptr)
    }

    /// Durably flush every appended frame. No-op when clean.
    pub fn sync(&mut self) -> Result<()> {
        if self.dirty {
            self.file.sync()?;
            self.dirty = false;
        }
        Ok(())
    }

    /// Close the active segment and open the next one (`segment + 1`).
    /// The retiring segment is synced first: frames already handed out
    /// as pointers must not be lost once their WAL records sync.
    fn roll(&mut self) -> Result<()> {
        self.file.sync()?;
        self.file.finish()?;
        self.segment += 1;
        self.file = self.fs.create(&acheron_vfs::join(
            &self.dir,
            &segment_file_name(self.segment),
        ))?;
        self.offset = 0;
        self.dirty = false;
        Ok(())
    }

    /// The active segment id.
    pub fn segment(&self) -> u64 {
        self.segment
    }

    /// Append offset within the active segment.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// True if frames were appended since the last sync.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }
}

/// Shared dereference path: positioned reads with a per-segment fd
/// cache. Clone-free sharing via `Arc<VlogReader>`.
pub struct VlogReader {
    fs: Arc<dyn Vfs>,
    dir: String,
    fds: Mutex<HashMap<u64, Arc<dyn RandomAccessFile>>>,
}

impl VlogReader {
    /// A reader over the segments in `dir`.
    pub fn new(fs: Arc<dyn Vfs>, dir: &str) -> VlogReader {
        VlogReader {
            fs,
            dir: dir.to_string(),
            fds: Mutex::new(HashMap::new()),
        }
    }

    fn segment_fd(&self, segment: u64) -> Result<Arc<dyn RandomAccessFile>> {
        if let Some(fd) = self.fds.lock().get(&segment) {
            return Ok(Arc::clone(fd));
        }
        let fd = self
            .fs
            .open(&acheron_vfs::join(&self.dir, &segment_file_name(segment)))?;
        self.fds.lock().insert(segment, Arc::clone(&fd));
        Ok(fd)
    }

    /// Read and verify the frame at `ptr`, returning `(key, value)`.
    pub fn read_frame(&self, ptr: &ValuePointer) -> Result<(Bytes, Bytes)> {
        let fd = self.segment_fd(ptr.segment)?;
        let frame = fd.read_at(ptr.offset, ptr.len as usize)?;
        decode_frame(&frame)
    }

    /// Dereference `ptr` for `key`: the frame must verify *and* carry
    /// the expected key, so a pointer patched or mis-resolved to another
    /// record fails as corruption instead of returning foreign bytes.
    pub fn get(&self, ptr: &ValuePointer, key: &[u8]) -> Result<Bytes> {
        let (frame_key, value) = self.read_frame(ptr)?;
        if frame_key != key {
            return Err(Error::corruption(format!(
                "vlog pointer (segment {}, offset {}) resolves to a different key",
                ptr.segment, ptr.offset
            )));
        }
        Ok(value)
    }

    /// Drop the cached handle for `segment` (call after deleting or
    /// rewriting it; a stale fd could otherwise serve reads for a
    /// replaced file on filesystems where open handles outlive unlink).
    pub fn invalidate(&self, segment: u64) {
        self.fds.lock().remove(&segment);
    }

    /// Drop every cached handle.
    pub fn clear(&self) {
        self.fds.lock().clear();
    }
}

/// One intact frame located by [`scan_segment`].
#[derive(Debug, Clone)]
pub struct ScannedFrame {
    /// Byte offset of the frame in the segment.
    pub offset: u64,
    /// Whole-frame length.
    pub len: u32,
    /// The key recorded in the frame.
    pub key: Bytes,
    /// Length of the value carried by the frame.
    pub value_len: u64,
}

/// Result of walking a segment front to back.
#[derive(Debug, Clone)]
pub struct SegmentScan {
    /// Every intact frame, in file order.
    pub frames: Vec<ScannedFrame>,
    /// Bytes covered by intact frames (the valid prefix).
    pub valid_len: u64,
    /// True if the segment ends in a torn or corrupt frame; bytes past
    /// `valid_len` are not part of any intact frame.
    pub torn: bool,
}

/// Walk the raw bytes of one segment, returning its intact frame prefix.
/// A torn tail (crash mid-append) is reported, not an error.
pub fn scan_segment(data: &Bytes) -> SegmentScan {
    let mut frames = Vec::new();
    let mut pos = 0u64;
    let mut torn = false;
    while (pos as usize) < data.len() {
        let start = pos as usize;
        let frame_len = match data.get(start..start + 4) {
            Some(hdr) => FRAME_HEADER + u32::from_le_bytes(hdr.try_into().unwrap()) as usize,
            None => {
                torn = true;
                break;
            }
        };
        if start + frame_len > data.len() {
            torn = true;
            break;
        }
        let frame = data.slice(start..start + frame_len);
        match decode_frame(&frame) {
            Ok((key, value)) => {
                frames.push(ScannedFrame {
                    offset: pos,
                    len: frame_len as u32,
                    key,
                    value_len: value.len() as u64,
                });
                pos += frame_len as u64;
            }
            Err(_) => {
                torn = true;
                break;
            }
        }
    }
    SegmentScan {
        frames,
        valid_len: pos,
        torn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acheron_vfs::MemFs;

    fn mem() -> Arc<dyn Vfs> {
        Arc::new(MemFs::new())
    }

    #[test]
    fn segment_names_round_trip() {
        assert_eq!(segment_file_name(7), "vlog-000007.vlg");
        assert_eq!(parse_segment_file_name("vlog-000007.vlg"), Some(7));
        assert_eq!(parse_segment_file_name("vlog-1234567.vlg"), Some(1234567));
        assert_eq!(parse_segment_file_name("vlog-xx.vlg"), None);
        assert_eq!(parse_segment_file_name("000007.sst"), None);
        assert_eq!(parse_segment_file_name("vlog-000007.vlg.tmp"), None);
    }

    #[test]
    fn frame_round_trip() {
        let frame = Bytes::from(encode_frame(b"user-key", b"a value worth separating"));
        let (k, v) = decode_frame(&frame).unwrap();
        assert_eq!(&k[..], b"user-key");
        assert_eq!(&v[..], b"a value worth separating");
    }

    #[test]
    fn frame_rejects_bit_flips_everywhere() {
        let frame = encode_frame(b"k", b"vvvv");
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x40;
            let bad = Bytes::from(bad);
            // Any single-bit flip must fail to decode (a length flip may
            // also fail as a size mismatch — either way, no silent
            // success with wrong bytes).
            assert!(decode_frame(&bad).is_err(), "flip at byte {i} undetected");
        }
    }

    #[test]
    fn frame_rejects_truncation() {
        let frame = encode_frame(b"key", b"value");
        for cut in 0..frame.len() {
            assert!(decode_frame(&Bytes::from(frame[..cut].to_vec())).is_err());
        }
    }

    #[test]
    fn writer_reader_round_trip() {
        let fs = mem();
        fs.mkdir_all("db").unwrap();
        let mut w = VlogWriter::create(Arc::clone(&fs), "db", 1, 1 << 20).unwrap();
        let p1 = w.append(b"alpha", b"first value").unwrap();
        let p2 = w.append(b"beta", &vec![0xabu8; 4096]).unwrap();
        w.sync().unwrap();
        assert_eq!(p1.segment, 1);
        assert_eq!(p1.offset, 0);
        assert_eq!(p2.offset, u64::from(p1.len));

        let r = VlogReader::new(fs, "db");
        assert_eq!(&r.get(&p1, b"alpha").unwrap()[..], b"first value");
        assert_eq!(r.get(&p2, b"beta").unwrap().len(), 4096);
        // Wrong key for a valid frame: loud failure.
        assert!(r.get(&p1, b"beta").is_err());
    }

    #[test]
    fn writer_rolls_segments_at_threshold() {
        let fs = mem();
        fs.mkdir_all("db").unwrap();
        let mut w = VlogWriter::create(Arc::clone(&fs), "db", 1, 256).unwrap();
        let mut ptrs = Vec::new();
        for i in 0..20u32 {
            ptrs.push((
                i,
                w.append(format!("k{i}").as_bytes(), &[b'v'; 100]).unwrap(),
            ));
        }
        w.sync().unwrap();
        assert!(w.segment() > 1, "threshold must have forced a roll");
        let r = VlogReader::new(fs, "db");
        for (i, p) in &ptrs {
            assert_eq!(
                &r.get(p, format!("k{i}").as_bytes()).unwrap()[..],
                &[b'v'; 100]
            );
        }
        // No segment grew far past the roll threshold.
        for p in ptrs.iter().map(|(_, p)| p) {
            assert!(p.offset < 256 + 120);
        }
    }

    #[test]
    fn scan_recovers_frame_prefix_after_torn_tail() {
        let fs = mem();
        fs.mkdir_all("db").unwrap();
        let mut w = VlogWriter::create(Arc::clone(&fs), "db", 3, 1 << 20).unwrap();
        for i in 0..5u32 {
            w.append(format!("key{i}").as_bytes(), &[i as u8; 64])
                .unwrap();
        }
        w.sync().unwrap();
        let path = acheron_vfs::join("db", &segment_file_name(3));
        let data = fs.read_all(&path).unwrap();

        let full = scan_segment(&data);
        assert_eq!(full.frames.len(), 5);
        assert!(!full.torn);
        assert_eq!(full.valid_len, data.len() as u64);

        // Cut mid-final-frame: the prefix survives, tail reported torn.
        let cut = data.slice(..data.len() - 10);
        let partial = scan_segment(&cut);
        assert_eq!(partial.frames.len(), 4);
        assert!(partial.torn);
        assert_eq!(partial.valid_len, full.frames[4].offset);
        assert_eq!(&partial.frames[3].key[..], b"key3");
        assert_eq!(partial.frames[3].value_len, 64);
    }

    #[test]
    fn scan_stops_at_corrupt_frame() {
        let mut data = encode_frame(b"a", b"111");
        let second_at = data.len();
        data.extend_from_slice(&encode_frame(b"b", b"222"));
        data[second_at + FRAME_HEADER + 4] ^= 0xff; // smash the key byte
        let scan = scan_segment(&Bytes::from(data));
        assert_eq!(scan.frames.len(), 1);
        assert!(scan.torn);
    }

    #[test]
    fn reader_invalidate_drops_stale_handles() {
        let fs = mem();
        fs.mkdir_all("db").unwrap();
        let mut w = VlogWriter::create(Arc::clone(&fs), "db", 1, 1 << 20).unwrap();
        let p = w.append(b"k", b"old").unwrap();
        w.sync().unwrap();
        let r = VlogReader::new(Arc::clone(&fs), "db");
        assert_eq!(&r.get(&p, b"k").unwrap()[..], b"old");
        // Rewrite the segment; without invalidation MemFs handles pin
        // the old inode.
        let mut w2 = VlogWriter::create(Arc::clone(&fs), "db", 1, 1 << 20).unwrap();
        let p2 = w2.append(b"k", b"new").unwrap();
        w2.sync().unwrap();
        r.invalidate(1);
        assert_eq!(&r.get(&p2, b"k").unwrap()[..], b"new");
    }
}
