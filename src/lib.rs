//! meta
