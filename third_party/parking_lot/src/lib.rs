//! Offline shim for the `parking_lot` crate.
//!
//! The development environment builds with `cargo build --offline` and has
//! no crates.io mirror, so the workspace vendors the subset of
//! `parking_lot` Acheron uses — [`Mutex`], [`RwLock`], and [`Condvar`] —
//! as thin wrappers over `std::sync`. The one semantic difference from
//! `std` that callers rely on is preserved: lock acquisition never returns
//! a poison error. A thread panicking while holding a lock simply releases
//! it (poison is swallowed via `into_inner`), matching `parking_lot`'s
//! no-poisoning contract.

use std::fmt;
use std::sync::{self, PoisonError};
use std::time::Duration;

/// Mutual exclusion primitive (no poisoning), wrapping `std::sync::Mutex`.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`]. Holds the inner std guard in an `Option` so
/// [`Condvar::wait`] can temporarily take it (std's wait consumes the
/// guard); outside of a wait the slot is always `Some`.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutably borrows the data (no locking needed — `&mut self` proves
    /// exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken during condvar wait")
    }
}

/// Reader-writer lock (no poisoning), wrapping `std::sync::RwLock`.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(RwLockReadGuard(g)),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard(p.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(RwLockWriteGuard(g)),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard(p.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutably borrows the data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Result of a [`Condvar::wait_for`]: did the wait hit its timeout?
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait returned because the timeout elapsed rather
    /// than a notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable usable with [`Mutex`]/[`MutexGuard`], wrapping
/// `std::sync::Condvar` (parking_lot signature: waits take `&mut guard`).
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified. The mutex is atomically released while
    /// waiting and re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard taken during condvar wait");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard taken during condvar wait");
        let (inner, res) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_no_poison_after_panic() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn condvar_wait_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            *done = true;
            drop(done);
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        drop(done);
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(7u64);
        assert_eq!(*l.read(), 7);
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
        assert!(l.try_write().is_some());
    }
}
