//! Offline shim for the `criterion` crate.
//!
//! The development environment builds with `cargo build --offline` and has
//! no crates.io mirror, so the workspace vendors the macro/API surface the
//! microbenches use ([`Criterion::bench_function`], benchmark groups,
//! [`black_box`], [`criterion_group!`], [`criterion_main!`]) with a
//! deliberately simple runner: each benchmark is warmed up briefly, then
//! timed over a fixed wall-clock window, and the mean ns/iter is printed.
//! No statistics, plots, or baselines — it exists so `cargo bench`
//! compiles offline and still yields usable relative numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmark
/// bodies; forwards to `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-benchmark timing driver handed to `bench_function` closures.
pub struct Bencher {
    iters_done: u64,
    nanos: u128,
}

impl Bencher {
    /// Times `f` repeatedly for a fixed window and records the mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: let caches/allocators settle and estimate cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < Duration::from_millis(50) {
            black_box(f());
            warm_iters += 1;
        }
        let budget = Duration::from_millis(300);
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < budget || iters == 0 {
            black_box(f());
            iters += 1;
            // Very slow bodies: one timed pass is enough.
            if iters >= warm_iters.saturating_mul(20).max(1) && start.elapsed() >= budget {
                break;
            }
        }
        self.iters_done = iters;
        self.nanos = start.elapsed().as_nanos();
    }
}

/// Identifier for one parameterized benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Group id from the parameter value alone.
    pub fn from_parameter<P: Display>(p: P) -> Self {
        BenchmarkId(p.to_string())
    }

    /// Group id from a function name plus parameter.
    pub fn new<P: Display>(name: &str, p: P) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { iters_done: 0, nanos: 0 };
    f(&mut b);
    let per_iter = if b.iters_done == 0 { 0 } else { b.nanos / b.iters_done as u128 };
    println!("bench {label:<44} {per_iter:>12} ns/iter ({} iters)", b.iters_done);
}

/// Top-level benchmark registry (upstream `Criterion` subset).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    /// Opens a named group of parameterized benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, name: name.to_string() }
    }
}

/// Benchmark group (upstream `BenchmarkGroup` subset).
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark of the group with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, &mut |b| f(b, input));
        self
    }

    /// Finishes the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Declares a benchmark group function calling each target with a shared
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
