//! Offline shim for the `crossbeam` crate.
//!
//! The development environment builds with `cargo build --offline` and has
//! no crates.io mirror, so the workspace vendors the one crossbeam API the
//! tests use: [`scope`] (scoped threads), implemented over
//! `std::thread::scope`. One behavioral difference: when a spawned thread
//! panics, `std::thread::scope` re-raises the panic after joining instead
//! of returning `Err`, so `scope(..)` here only ever yields `Ok` — which
//! is indistinguishable for callers that `.unwrap()` the result (all of
//! ours do).

use std::any::Any;

/// Result type matching `crossbeam::thread::Result`.
pub type ScopeResult<T> = Result<T, Box<dyn Any + Send + 'static>>;

/// Scoped-thread handle passed to [`scope`] closures; spawned closures
/// receive a fresh `&Scope` so they can spawn siblings, mirroring
/// crossbeam's `Scope::spawn(|s| ...)` shape.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives a `&Scope` (ignored by
    /// most callers, hence the conventional `|_|`).
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        self.inner.spawn(move || f(&scope))
    }
}

/// Creates a scope for spawning threads that may borrow from the caller's
/// stack. All spawned threads are joined before this returns.
pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

/// Module alias matching `crossbeam::thread`.
pub mod thread {
    pub use super::{scope, Scope, ScopeResult as Result};
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn scoped_threads_borrow_stack() {
        let counter = AtomicU64::new(0);
        super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_spawn_from_child() {
        let counter = AtomicU64::new(0);
        super::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
