//! Offline shim for the `proptest` crate.
//!
//! The development environment builds with `cargo build --offline` and has
//! no crates.io mirror, so the workspace vendors a generation-only subset
//! of proptest covering what Acheron's property tests use: the
//! [`Strategy`] trait (`prop_map`, tuples, ranges, [`Just`], `any`,
//! collections, `sample::select`, weighted [`prop_oneof!`]), the
//! [`proptest!`] test macro, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from upstream, chosen deliberately:
//! - **No shrinking.** A failing case panics with the generated inputs'
//!   `Debug` left to the assertion message; there is no minimization pass.
//! - **Deterministic seeding.** Upstream seeds from the OS and persists
//!   regressions to `proptest-regressions/`; this shim derives the seed
//!   from the test's module path + name, so every run replays the same
//!   case sequence (regression files are simply never written or read).
//! - Case counts honor `ProptestConfig::with_cases` exactly.

use std::cell::Cell;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator driving all strategies (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: Cell<u64>,
}

impl TestRng {
    /// Builds a generator seeded from an arbitrary label (FNV-1a hash),
    /// used by [`proptest!`] with the test's module path and name.
    pub fn from_label(label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: Cell::new(h) }
    }

    /// Returns the next 64-bit value of the stream.
    pub fn next_u64(&self) -> u64 {
        let s = self.state.get().wrapping_add(0x9E37_79B9_7F4A_7C15);
        self.state.set(s);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    fn unit_f64(&self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
///
/// Object-safe core (`generate`) plus sized combinators, so
/// `Box<dyn Strategy<Value = T>>` works for [`prop_oneof!`] arms.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (upstream `Strategy::prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (upstream `Strategy::boxed`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy, the common type of [`prop_oneof!`] arms.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the wrapped value (upstream `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted union of type-erased strategies (what [`prop_oneof!`] builds).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one non-zero weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut x = rng.below(self.total);
        for (w, s) in &self.arms {
            if x < *w as u64 {
                return s.generate(rng);
            }
            x -= *w as u64;
        }
        unreachable!("weights exhausted")
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies: any::<T>(), ranges, tuples
// ---------------------------------------------------------------------------

/// Types with a default whole-domain strategy (upstream `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Whole-domain strategy for `T` (upstream `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u64 + 1;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

// ---------------------------------------------------------------------------
// Collection / sample / bool strategies
// ---------------------------------------------------------------------------

/// Size bounds accepted by collection strategies.
pub trait SizeRange: Clone {
    /// Picks a target size.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for std::ops::Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty size range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SizeRange for std::ops::RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        (*self.start()..*self.end() + 1).pick(rng)
    }
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeMap;

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    pub struct BTreeMapStrategy<K, V, R> {
        key: K,
        value: V,
        size: R,
    }

    /// `prop::collection::btree_map(key, value, len_range)`.
    pub fn btree_map<K, V, R>(key: K, value: V, size: R) -> BTreeMapStrategy<K, V, R>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
        R: SizeRange,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K, V, R> Strategy for BTreeMapStrategy<K, V, R>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
        R: SizeRange,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut map = BTreeMap::new();
            // Key collisions shrink the map below target, like upstream;
            // bounded retries keep generation total.
            let mut attempts = 0usize;
            while map.len() < target && attempts < target.saturating_mul(10) + 16 {
                map.insert(self.key.generate(rng), self.value.generate(rng));
                attempts += 1;
            }
            map
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy choosing uniformly from a fixed list.
    pub struct Select<T: Clone> {
        choices: Vec<T>,
    }

    /// `prop::sample::select(choices)` — uniform choice from a non-empty
    /// vector.
    pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
        assert!(!choices.is_empty(), "select needs at least one choice");
        Select { choices }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.choices[rng.below(self.choices.len() as u64) as usize].clone()
        }
    }
}

/// Boolean strategies (`prop::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// The uniform boolean strategy (`prop::bool::ANY`).
    #[derive(Clone, Copy, Debug)]
    pub struct BoolAny;

    /// Uniform `true`/`false`.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

// ---------------------------------------------------------------------------
// Runner config + macros
// ---------------------------------------------------------------------------

/// Per-test runner configuration (upstream `ProptestConfig` subset).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// expands to a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: munches one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::TestRng::from_label(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property body (no shrinking: plain
/// `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property body (plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Weighted (`w => strat`) or uniform (`strat, ...`) choice among
/// strategies producing a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Glob-import surface matching `proptest::prelude::*` for the names this
/// workspace uses.
pub mod prelude {
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Mirrors upstream's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Put(u8),
        Del(u8),
        Tick,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            4 => any::<u8>().prop_map(Op::Put),
            2 => any::<u8>().prop_map(Op::Del),
            1 => Just(Op::Tick),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_sizes_respected(ops in prop::collection::vec(op_strategy(), 1..50)) {
            prop_assert!(!ops.is_empty() && ops.len() < 50);
        }

        #[test]
        fn ranges_and_tuples(seed in any::<u64>(), (lo, w) in (0u64..100, 1u64..=8)) {
            let _ = seed;
            prop_assert!(lo < 100);
            prop_assert!((1..=8).contains(&w));
        }

        #[test]
        fn btree_map_and_bool(m in prop::collection::btree_map(
            (any::<u16>(), 1u64..50),
            (any::<u8>(), prop::bool::ANY),
            1..20,
        )) {
            prop_assert!(!m.is_empty());
            for ((_, s), _) in &m {
                prop_assert!((1..50).contains(s));
            }
        }

        #[test]
        fn select_and_floats(h in prop::sample::select(vec![1usize, 3, 8]), f in 0.0f64..1.0) {
            prop_assert!([1usize, 3, 8].contains(&h));
            prop_assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::from_label("x");
        let mut b = crate::TestRng::from_label("x");
        let s = op_strategy();
        for _ in 0..64 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    #[test]
    fn oneof_weights_roughly_hold() {
        let mut rng = crate::TestRng::from_label("weights");
        let s = op_strategy();
        let mut ticks = 0;
        for _ in 0..7_000 {
            if matches!(s.generate(&mut rng), Op::Tick) {
                ticks += 1;
            }
        }
        // weight 1 of 7 -> expect ~1000
        assert!((600..1500).contains(&ticks), "got {ticks}");
    }
}
