//! Offline shim for the `bytes` crate.
//!
//! The development environment builds with `cargo build --offline` and has
//! no crates.io mirror, so the workspace vendors a minimal, API-compatible
//! subset of `bytes` covering exactly what Acheron uses: the [`Bytes`]
//! handle (cheaply clonable, sliceable, immutable byte storage). The
//! upstream zero-copy `vtable` machinery is replaced by an `Arc<[u8]>`
//! plus a sub-range, which preserves the two properties the engine relies
//! on: `clone()` is O(1) and `slice()` shares the parent allocation.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable, contiguous, immutable slice of memory.
///
/// Shim for `bytes::Bytes`: reference-counted storage plus a `(start, end)`
/// window, so clones and sub-slices share one allocation.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates a new empty `Bytes`.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Creates `Bytes` from a static slice.
    ///
    /// The shim copies the bytes once instead of borrowing them for
    /// `'static` — observable behavior is identical.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::copy_from_slice(bytes)
    }

    /// Creates `Bytes` by copying the given slice.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Number of bytes contained.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-slice sharing the same backing allocation.
    ///
    /// # Panics
    /// Panics when the range is out of bounds or inverted, matching
    /// upstream `bytes`.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end, "range start must not exceed end: {begin} > {end}");
        assert!(end <= len, "range end out of bounds: {end} > {len}");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes { data, start: 0, end }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        self.as_slice() == other.as_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_and_windows() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(..2);
        assert_eq!(&s2[..], &[2, 3]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn equality_and_order() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::copy_from_slice(b"abd");
        assert!(a < b);
        assert_eq!(a, Bytes::from(b"abc".to_vec()));
        assert_eq!(a, b"abc"[..]);
    }

    #[test]
    fn empty_and_unbounded_slices() {
        let b = Bytes::new();
        assert!(b.is_empty());
        let c = Bytes::from(vec![9u8; 8]).slice(..);
        assert_eq!(c.len(), 8);
        assert_eq!(c.slice(8..8).len(), 0);
    }
}
