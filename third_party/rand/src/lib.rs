//! Offline shim for the `rand` crate.
//!
//! The development environment builds with `cargo build --offline` and has
//! no crates.io mirror, so the workspace vendors the `rand` 0.8 API subset
//! Acheron uses: [`Rng::gen`], [`Rng::gen_range`] (half-open and inclusive
//! integer ranges), [`Rng::gen_bool`], and a [`StdRng`] seeded through
//! [`SeedableRng::seed_from_u64`]. The generator is splitmix64 — not
//! upstream's ChaCha12, so *sequences differ from real `rand`*, but every
//! consumer in this workspace only requires determinism for a fixed seed,
//! which splitmix64 provides (and passes basic equidistribution smoke
//! tests below).

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniformly distributed 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Values `Rng::gen` can produce (shim for `Standard`-distribution
/// sampling).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types uniformly samplable by `gen_range` (marker, mirrors
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[lo, hi)`. `hi > lo` must hold.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Samples uniformly from `[lo, hi]`. `hi >= lo` must hold.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range called with empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range called with empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        Self::sample_half_open(rng, lo, hi + f64::EPSILON * hi.abs().max(1.0))
    }
}

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// User-facing generator interface (`rand::Rng` subset).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32` in `[0, 1)`, integers uniform over the full domain).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (`lo..hi` or `lo..=hi`).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        Self: Sized,
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Generators constructible from seeds (`seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// The workspace's standard deterministic generator (splitmix64).
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // splitmix64 (Steele et al.) — full-period, passes BigCrush when
        // used as a 64-bit mixer; plenty for test workload generation.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        StdRng { state }
    }
}

/// Named-generator module matching `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

/// Glob-import convenience module matching `rand::prelude`.
pub mod prelude {
    pub use super::{Rng, RngCore, SeedableRng, StdRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u64 = r.gen_range(5..=5);
            assert_eq!(w, 5);
            let x: usize = r.gen_range(0..3);
            assert!(x < 3);
            let y: u32 = r.gen_range(1..=100);
            assert!((1..=100).contains(&y));
        }
    }

    #[test]
    fn gen_f64_unit_interval_covers() {
        let mut r = StdRng::seed_from_u64(1);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
            lo |= u < 0.1;
            hi |= u > 0.9;
        }
        assert!(lo && hi, "unit samples should cover both tails");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "got {hits}");
    }
}
