//! Concurrency smoke tests: readers race a writer (and each other)
//! across flushes and compactions without panics, torn reads, or
//! integrity violations; snapshot readers observe frozen states.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use acheron::{Db, DbOptions};
use acheron_vfs::MemFs;

fn opts() -> DbOptions {
    DbOptions {
        write_buffer_bytes: 8 << 10,
        level1_target_bytes: 32 << 10,
        target_file_bytes: 16 << 10,
        page_size: 1024,
        max_levels: 4,
        ..DbOptions::default()
    }
}

#[test]
fn readers_race_writer() {
    let db = Db::open(Arc::new(MemFs::new()), "db", opts()).unwrap();
    let stop = AtomicBool::new(false);
    let reads = AtomicU64::new(0);

    crossbeam::scope(|s| {
        // Writer: monotone values per key so readers can validate.
        s.spawn(|_| {
            for round in 0u64..40 {
                for k in 0u64..400 {
                    let key = format!("key{k:05}");
                    db.put(key.as_bytes(), format!("{round:020}").as_bytes())
                        .unwrap();
                }
            }
            stop.store(true, Ordering::Release);
        });
        // Readers: a key's value must never regress within one reader's
        // observation sequence (monotone writes + linearizable gets).
        for t in 0..3 {
            let db = db.clone();
            let stop = &stop;
            let reads = &reads;
            s.spawn(move |_| {
                let mut last_seen: Vec<u64> = vec![0; 400];
                let mut k = t as u64;
                while !stop.load(Ordering::Acquire) {
                    k = (k + 37) % 400;
                    let key = format!("key{k:05}");
                    if let Some(v) = db.get(key.as_bytes()).unwrap() {
                        let round: u64 = std::str::from_utf8(&v)
                            .unwrap()
                            .trim_start_matches('0')
                            .parse()
                            .unwrap_or(0);
                        assert!(
                            round >= last_seen[k as usize],
                            "value regressed for {key}: {round} < {}",
                            last_seen[k as usize]
                        );
                        last_seen[k as usize] = round;
                    }
                    reads.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    })
    .unwrap();

    assert!(reads.load(Ordering::Relaxed) > 0);
    db.verify_integrity().unwrap();
    for k in 0u64..400 {
        let v = db.get(format!("key{k:05}").as_bytes()).unwrap().unwrap();
        assert_eq!(&v[..], format!("{:020}", 39).as_bytes());
    }
}

#[test]
fn snapshot_readers_see_frozen_state_under_writes() {
    let db = Db::open(Arc::new(MemFs::new()), "db", opts()).unwrap();
    for k in 0u64..200 {
        db.put(format!("key{k:04}").as_bytes(), b"epoch-one")
            .unwrap();
    }
    let snap = Arc::new(db.snapshot());

    crossbeam::scope(|s| {
        // Writer churns past several flushes and compactions.
        s.spawn(|_| {
            for round in 0..30u64 {
                for k in 0u64..200 {
                    db.put(
                        format!("key{k:04}").as_bytes(),
                        format!("epoch-{round}").as_bytes(),
                    )
                    .unwrap();
                }
            }
        });
        for _ in 0..3 {
            let db = db.clone();
            let snap = Arc::clone(&snap);
            s.spawn(move |_| {
                for pass in 0..200u64 {
                    let k = (pass * 31) % 200;
                    let v = db.get_at(&snap, format!("key{k:04}").as_bytes()).unwrap();
                    assert_eq!(
                        v.as_deref(),
                        Some(&b"epoch-one"[..]),
                        "snapshot view changed under concurrent writes"
                    );
                }
            });
        }
    })
    .unwrap();
    db.verify_integrity().unwrap();
}

#[test]
fn concurrent_scans_and_range_deletes() {
    let db = Db::open(Arc::new(MemFs::new()), "db", opts()).unwrap();
    for i in 0u64..2_000 {
        db.put_with_dkey(format!("key{i:06}").as_bytes(), &[b'v'; 32], i)
            .unwrap();
    }
    crossbeam::scope(|s| {
        s.spawn(|_| {
            for cut in 1..=10u64 {
                db.range_delete_secondary((cut - 1) * 100, cut * 100 - 1)
                    .unwrap();
                db.maintain().unwrap();
            }
        });
        for t in 0..2 {
            let db = db.clone();
            s.spawn(move |_| {
                for pass in 0..30u64 {
                    let lo = ((pass + t) * 131) % 1_500;
                    let rows = db
                        .scan(
                            format!("key{lo:06}").as_bytes(),
                            format!("key{:06}", lo + 200).as_bytes(),
                        )
                        .unwrap();
                    // Scans observe some consistent cut: never more rows
                    // than the full range could hold.
                    assert!(rows.len() <= 201);
                }
            });
        }
    })
    .unwrap();
    // After all deletes: exactly the keys with dkey >= 1000 remain.
    db.compact_all().unwrap();
    let remaining = db.scan(b"key000000", b"key999999").unwrap();
    assert_eq!(remaining.len(), 1_000);
    db.verify_integrity().unwrap();
}
