//! Flight-recorder tests: the event ring, the delete-persistence
//! gauges, and the exposition endpoints.
//!
//! * event seqnos stay strictly ordered and consistent under concurrent
//!   writers racing background maintenance;
//! * the fixed-capacity ring keeps the newest events and accounts for
//!   everything it overwrote;
//! * `CompactionPicked` reasons agree with the picker's policy in a
//!   deterministic (`background_threads = 0`) run;
//! * the tombstone-age gauge drains to zero once a full compaction
//!   purges every delete;
//! * malformed `metrics`/`events` frames neither panic nor wedge the
//!   server.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use acheron::obs::{Event, EventLog};
use acheron::{CompactionReason, Db, DbOptions};
use acheron_server::wire::encode_frame;
use acheron_server::{Client, Server, ServerOptions};
use acheron_vfs::MemFs;

fn opts(background_threads: usize) -> DbOptions {
    DbOptions {
        write_buffer_bytes: 8 << 10,
        level1_target_bytes: 32 << 10,
        target_file_bytes: 16 << 10,
        page_size: 1024,
        max_levels: 4,
        background_threads,
        event_log_capacity: 1 << 15,
        ..DbOptions::default()
    }
}

fn open(o: DbOptions) -> Db {
    Db::open(Arc::new(MemFs::new()), "db", o).unwrap()
}

/// Four writers race background flushes and compactions; the drained
/// ring must still be internally consistent: strictly ascending seqnos,
/// retained + dropped accounting for every emission, and the expected
/// event kinds present.
#[test]
fn event_order_is_consistent_under_concurrent_writers() {
    let db = open(opts(2));
    crossbeam::scope(|s| {
        for w in 0..4u64 {
            let db = db.clone();
            s.spawn(move |_| {
                for k in 0..1500u64 {
                    let key = format!("w{w}-key{k:05}");
                    db.put(key.as_bytes(), b"value-payload-0123456789").unwrap();
                    if k % 7 == 0 {
                        db.delete(key.as_bytes()).unwrap();
                    }
                }
            });
        }
    })
    .unwrap();
    db.wait_idle().unwrap();

    let snap = db.events();
    assert!(!snap.events.is_empty());
    for pair in snap.events.windows(2) {
        assert!(
            pair[0].seqno < pair[1].seqno,
            "seqnos out of order: {} then {}",
            pair[0].seqno,
            pair[1].seqno
        );
    }
    assert_eq!(snap.emitted, snap.events.len() as u64 + snap.dropped);
    assert!(snap.events.last().unwrap().seqno < snap.emitted);
    let has = |f: fn(&Event) -> bool| snap.events.iter().any(|se| f(&se.event));
    assert!(has(|e| matches!(e, Event::WalGroupCommit { .. })));
    assert!(has(|e| matches!(e, Event::MemtableSealed { .. })));
    assert!(has(|e| matches!(e, Event::FlushEnd { .. })));
}

/// The ring keeps exactly the newest `capacity` events; everything
/// older is reported dropped, and payloads survive the wraparound.
#[test]
fn ring_overwrite_keeps_newest_events_and_counts_drops() {
    let log = EventLog::new(8);
    for i in 0..100u64 {
        log.log(Event::FlushStart { entries: i });
    }
    let snap = log.snapshot();
    assert_eq!(snap.emitted, 100);
    assert_eq!(snap.dropped, 92);
    let seqnos: Vec<u64> = snap.events.iter().map(|se| se.seqno).collect();
    assert_eq!(seqnos, (92..100).collect::<Vec<u64>>());
    for se in &snap.events {
        match se.event {
            Event::FlushStart { entries } => assert_eq!(entries, se.seqno),
            other => panic!("unexpected event {other:?}"),
        }
    }

    // Same at engine scale: a deliberately tiny ring under a write-heavy
    // run retains at most `capacity` events and owns up to the rest.
    let db = open(DbOptions {
        event_log_capacity: 16,
        ..opts(0)
    });
    for k in 0..800u64 {
        db.put(format!("key{k:05}").as_bytes(), b"v").unwrap();
    }
    db.flush().unwrap();
    let snap = db.events();
    assert!(snap.events.len() <= 16);
    assert!(snap.emitted > 16);
    assert_eq!(snap.dropped, snap.emitted - snap.events.len() as u64);
}

/// In a deterministic run every `CompactionPicked` event must carry a
/// reason consistent with the picker's policy: `L0Saturation` only for
/// L0 picks, `LevelSaturation` only below it, `TtlExpired` once the
/// clock passes the FADE deadline, `Manual` for `compact_all` — and the
/// per-reason totals must reconcile with the stats counters.
#[test]
fn compaction_picked_reasons_match_picker_policy() {
    let db = open(opts(0).with_fade(5_000));
    for k in 0..3000u64 {
        db.put(format!("key{k:05}").as_bytes(), b"value-payload-0123456789")
            .unwrap();
        if k % 3 == 0 {
            db.delete(format!("key{k:05}").as_bytes()).unwrap();
        }
        if k % 256 == 0 {
            db.maintain().unwrap();
        }
    }
    db.flush().unwrap();
    db.maintain().unwrap();
    // A fresh batch of tombstones in a single L0 file: too few files to
    // saturate anything, so only the FADE TTL trigger can touch them
    // once the clock passes D_th.
    for k in 0..200u64 {
        db.delete(format!("ttl{k:04}").as_bytes()).unwrap();
    }
    db.flush().unwrap();
    for _ in 0..20 {
        db.advance_clock(2_000);
        db.maintain().unwrap();
    }
    db.compact_all().unwrap();

    let snap = db.events();
    assert_eq!(snap.dropped, 0, "ring sized to retain the whole run");
    let picked: Vec<(CompactionReason, u64, u64)> = snap
        .events
        .iter()
        .filter_map(|se| match se.event {
            Event::CompactionPicked {
                reason,
                level,
                output_level,
                ..
            } => Some((reason, level, output_level)),
            _ => None,
        })
        .collect();
    assert!(!picked.is_empty());
    for &(reason, level, output_level) in &picked {
        assert!(output_level >= level, "{reason:?} moved data upward");
        match reason {
            CompactionReason::L0Saturation => assert_eq!(level, 0, "L0 trigger off-level"),
            CompactionReason::LevelSaturation => {
                assert!(level >= 1, "byte-budget trigger fired for L0")
            }
            CompactionReason::TtlExpired | CompactionReason::Manual => {}
        }
    }
    let count = |r: CompactionReason| picked.iter().filter(|&&(pr, ..)| pr == r).count() as u64;
    assert!(count(CompactionReason::TtlExpired) >= 1, "FADE never fired");
    assert!(count(CompactionReason::Manual) >= 1, "compact_all unseen");
    let stats = db.stats().snapshot();
    assert_eq!(picked.len() as u64, stats.compactions);
    assert_eq!(count(CompactionReason::TtlExpired), stats.ttl_compactions);
}

/// The age gauge tracks live tombstones only: populated while deletes
/// await persistence, empty (including the histogram) after a full
/// purge.
#[test]
fn tombstone_age_gauge_drains_to_zero_after_purge() {
    const D_TH: u64 = 5_000;
    let db = open(opts(0).with_fade(D_TH));
    for k in 0..1500u64 {
        db.put(format!("key{k:05}").as_bytes(), b"value-payload-0123456789")
            .unwrap();
    }
    for k in (0..1500u64).step_by(2) {
        db.delete(format!("key{k:05}").as_bytes()).unwrap();
    }
    db.flush().unwrap();

    let gauges = db.tombstone_gauges();
    assert!(gauges.live_tombstones() > 0);
    assert_eq!(gauges.live_tombstones(), db.live_tombstones());
    assert!(gauges.oldest_live_tick().is_some());
    let hist = gauges.age_histogram(db.now(), Some(D_TH));
    assert!(hist.total > 0);
    assert_eq!(hist.total, gauges.live_tombstones());

    for _ in 0..40 {
        db.advance_clock(2_000);
        db.maintain().unwrap();
    }
    db.compact_all().unwrap();
    assert_eq!(db.live_tombstones(), 0);

    let gauges = db.tombstone_gauges();
    assert_eq!(gauges.live_tombstones(), 0);
    assert_eq!(gauges.oldest_live_tick(), None);
    for level in &gauges.levels {
        assert_eq!(level.tombstones, 0, "level {} still populated", level.level);
    }
    let hist = gauges.age_histogram(db.now(), Some(D_TH));
    assert_eq!(hist.total, 0);
    assert_eq!(hist.oldest_age, None);
    assert!(hist.counts.iter().all(|&c| c == 0));
}

/// Read whatever the server sends until it closes the connection or
/// goes quiet; the point is only that we get *out* (no wedge).
fn drain(mut stream: &TcpStream) -> Vec<u8> {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut out = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => out.extend_from_slice(&buf[..n]),
            Err(_) => break,
        }
    }
    out
}

/// Malformed observability frames — junk payloads on the `metrics` and
/// `events` tags, unknown tags, raw garbage — must be answered with a
/// protocol error (or dropped), never a panic, and the server must keep
/// serving well-formed clients afterwards.
#[test]
fn malformed_metrics_and_events_frames_do_not_panic_server() {
    let db = Arc::new(open(opts(0).with_fade(5_000)));
    let mut server = Server::start(Arc::clone(&db), "127.0.0.1:0", ServerOptions::default())
        .expect("bind server");
    let addr = server.local_addr();

    // Well-framed but invalid payloads: metrics/events take no
    // arguments, so trailing bytes are a protocol violation; 0xFE is an
    // unknown tag.
    for payload in [
        vec![8u8, 1, 2, 3],
        vec![9u8, 0xFF],
        vec![8u8; 100],
        vec![0xFEu8, 8, 9],
    ] {
        let stream = TcpStream::connect(addr).unwrap();
        let mut frame = Vec::new();
        encode_frame(&payload, &mut frame);
        (&stream).write_all(&frame).unwrap();
        let reply = drain(&stream);
        assert!(!reply.is_empty(), "expected an error frame for {payload:?}");
    }
    // Raw garbage that never forms a frame (checksum/length nonsense).
    {
        let stream = TcpStream::connect(addr).unwrap();
        (&stream).write_all(&[0xAA; 64]).unwrap();
        drain(&stream);
    }

    // The server is still healthy: a well-formed client gets both
    // expositions.
    let mut client = Client::connect(addr).unwrap();
    let metrics = client.metrics().unwrap();
    assert!(metrics.contains("db_live_tombstones"), "{metrics}");
    assert!(
        metrics.contains("db_tombstone_age_ticks_bucket"),
        "{metrics}"
    );
    let events = client.events().unwrap();
    assert!(events.contains("events emitted"), "{events}");
    server.shutdown();
}

/// Lint the Prometheus text exposition of a live sharded server: every
/// sample line parses, metric and label names are spec-valid, each
/// family declares exactly one `# TYPE` before its first sample, and no
/// series (name + label set) appears twice. A 4-shard engine is the
/// hard case — per-shard and per-level labels are where duplicate
/// series would sneak in.
#[test]
fn prometheus_exposition_is_lint_clean() {
    let db = Arc::new(
        acheron::ShardedDb::open(
            Arc::new(MemFs::new()),
            "db",
            DbOptions::small().with_fade(5_000),
            4,
        )
        .unwrap(),
    );
    for k in 0..2000u64 {
        db.put(format!("key{k:05}").as_bytes(), b"value-payload-0123456789")
            .unwrap();
        if k % 3 == 0 {
            db.delete(format!("key{k:05}").as_bytes()).unwrap();
        }
    }
    db.flush().unwrap();
    let mut server = Server::start(Arc::clone(&db), "127.0.0.1:0", ServerOptions::default())
        .expect("bind server");
    let mut client = Client::connect(server.local_addr()).unwrap();
    let text = client.metrics().unwrap();
    server.shutdown();

    let valid_metric = |name: &str| {
        let mut chars = name.chars();
        chars
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    };
    let valid_label = |name: &str| {
        let mut chars = name.chars();
        chars
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
            && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
    };
    // A sample's candidate families: itself (flat counters may end in
    // `_count`/`_sum` as literal names) or, for histogram samples, the
    // name with the per-sample suffix stripped.
    let families_of = |name: &str| {
        let mut out = vec![name.to_string()];
        for suffix in ["_bucket", "_sum", "_count"] {
            if let Some(stripped) = name.strip_suffix(suffix) {
                out.push(stripped.to_string());
            }
        }
        out
    };

    let mut typed: std::collections::HashMap<String, String> = std::collections::HashMap::new();
    let mut series = std::collections::HashSet::new();
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let family = parts.next().unwrap_or_default();
            let kind = parts.next().unwrap_or_default();
            assert!(
                valid_metric(family),
                "line {lineno}: bad family name {family:?}"
            );
            assert!(
                matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ),
                "line {lineno}: bad TYPE kind {kind:?}"
            );
            assert!(
                parts.next().is_none(),
                "line {lineno}: trailing TYPE tokens"
            );
            assert!(
                typed.insert(family.to_string(), kind.to_string()).is_none(),
                "line {lineno}: duplicate # TYPE for {family}"
            );
            continue;
        }
        assert!(
            !line.starts_with('#'),
            "line {lineno}: unexpected comment {line:?}"
        );

        // Sample line: name[{labels}] value
        let (series_part, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("line {lineno}: no value separator in {line:?}"));
        assert!(
            value.parse::<f64>().is_ok(),
            "line {lineno}: non-numeric value {value:?}"
        );
        let (name, labels) = match series_part.split_once('{') {
            Some((name, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .unwrap_or_else(|| panic!("line {lineno}: unterminated label set in {line:?}"));
                for pair in body.split(',').filter(|p| !p.is_empty()) {
                    let (lname, lvalue) = pair
                        .split_once('=')
                        .unwrap_or_else(|| panic!("line {lineno}: bad label pair {pair:?}"));
                    assert!(
                        valid_label(lname),
                        "line {lineno}: bad label name {lname:?}"
                    );
                    assert!(
                        lvalue.starts_with('"') && lvalue.ends_with('"') && lvalue.len() >= 2,
                        "line {lineno}: unquoted label value {lvalue:?}"
                    );
                }
                (name, body)
            }
            None => (series_part, ""),
        };
        assert!(
            valid_metric(name),
            "line {lineno}: bad metric name {name:?}"
        );
        assert!(
            families_of(name).iter().any(|f| typed.contains_key(f)),
            "line {lineno}: sample {name} has no preceding # TYPE for its family"
        );
        assert!(
            series.insert((name.to_string(), labels.to_string())),
            "line {lineno}: duplicate series {name}{{{labels}}}"
        );
        samples += 1;
    }
    assert!(
        samples > 20,
        "suspiciously small exposition ({samples} samples)"
    );
    // The families this PR leans on are present.
    for family in [
        "db_live_tombstones",
        "db_tombstone_age_ticks",
        "db_clock_tick",
    ] {
        assert!(typed.contains_key(family), "missing family {family}");
    }
}
