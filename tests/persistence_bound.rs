//! Invariant I3 (the paper's core guarantee): with FADE enabled, every
//! point tombstone is physically purged within `D_th` ticks of its
//! insertion — under arbitrary workloads, threshold settings, TTL
//! allocations, and clock patterns.

use std::sync::Arc;

use acheron::{Db, DbOptions, FadeOptions, FilePickPolicy, TtlAllocation};
use acheron_vfs::MemFs;
use proptest::prelude::*;
// Explicit (non-glob) imports: proptest's prelude re-exports a different
// rand version's traits, which would shadow these under a glob.
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn opts(d_th: u64, alloc: TtlAllocation) -> DbOptions {
    let mut o = DbOptions {
        write_buffer_bytes: 2 << 10,
        level1_target_bytes: 8 << 10,
        target_file_bytes: 4 << 10,
        page_size: 512,
        max_levels: 4,
        ..DbOptions::default()
    };
    o.fade = Some(FadeOptions {
        delete_persistence_threshold: d_th,
        ttl_allocation: alloc,
        saturation_pick: FilePickPolicy::MinOverlap,
    });
    o
}

/// Drive a random workload and verify the bound holds throughout.
fn check_bound(seed: u64, d_th: u64, alloc: TtlAllocation, idle_bursts: bool) {
    let db = Db::open(Arc::new(MemFs::new()), "db", opts(d_th, alloc)).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    for step in 0..1_500u32 {
        let k: u32 = rng.gen_range(0..300);
        if rng.gen_bool(0.3) {
            db.delete(format!("key{k:04}").as_bytes()).unwrap();
        } else {
            db.put(format!("key{k:04}").as_bytes(), &[b'v'; 24])
                .unwrap();
        }
        if idle_bursts && step % 400 == 399 {
            // Idle time: the clock advances while no writes arrive. The
            // bound is enforced *at maintenance opportunities*, so idle
            // deployments run maintenance on a timer; we model that by
            // stepping the clock in sub-margin increments with a
            // maintain() at each tick (a single giant jump would deny
            // the engine any chance to act before the deadline).
            let total = rng.gen_range(1..=2 * d_th);
            let step_size = (d_th / 32).max(1);
            let mut advanced = 0;
            while advanced < total {
                let inc = step_size.min(total - advanced);
                db.advance_clock(inc);
                advanced += inc;
                db.maintain().unwrap();
            }
        }
        // The bound is continuous: at no observation point may a live
        // tombstone be older than D_th (checked sparsely for speed).
        if step % 100 == 0 {
            if let Some(age) = db.oldest_live_tombstone_age() {
                assert!(
                    age <= d_th,
                    "live tombstone aged {age} > D_th {d_th} at step {step}"
                );
            }
        }
    }
    // Final settle: let everything expire, stepping so the engine gets
    // its maintenance opportunities.
    let step_size = (d_th / 32).max(1);
    let mut advanced = 0;
    while advanced < 3 * d_th {
        db.advance_clock(step_size);
        advanced += step_size;
        db.maintain().unwrap();
    }
    assert_eq!(
        db.live_tombstones(),
        0,
        "all tombstones must eventually purge"
    );
    use std::sync::atomic::Ordering::Relaxed;
    assert_eq!(
        db.stats().persistence_violations.load(Relaxed),
        0,
        "no purge may exceed the threshold"
    );
    assert!(
        db.stats().persistence_latency.max() <= d_th,
        "max purge latency {} > D_th {d_th}",
        db.stats().persistence_latency.max()
    );
}

/// The same bound for *sort-key range tombstones*: every range delete
/// must be physically purged (its carrier rewritten at the bottommost
/// level) within `D_th` ticks, under a workload that keeps issuing
/// overlapping ranges while puts re-populate the erased keyspace.
fn check_range_bound(seed: u64, d_th: u64, alloc: TtlAllocation) {
    let db = Db::open(Arc::new(MemFs::new()), "db", opts(d_th, alloc)).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    for step in 0..900u32 {
        let k: u32 = rng.gen_range(0..300);
        let roll: f64 = rng.gen();
        if roll < 0.08 {
            let hi = (k + rng.gen_range(1..40)).min(299);
            db.range_delete_keys(
                format!("key{k:04}").as_bytes(),
                format!("key{hi:04}").as_bytes(),
            )
            .unwrap();
        } else if roll < 0.25 {
            db.delete(format!("key{k:04}").as_bytes()).unwrap();
        } else {
            db.put(format!("key{k:04}").as_bytes(), &[b'v'; 24])
                .unwrap();
        }
        if step % 300 == 299 {
            // Idle time in sub-margin steps (see check_bound).
            let total = rng.gen_range(1..=2 * d_th);
            let step_size = (d_th / 32).max(1);
            let mut advanced = 0;
            while advanced < total {
                let inc = step_size.min(total - advanced);
                db.advance_clock(inc);
                advanced += inc;
                db.maintain().unwrap();
            }
        }
        if step % 100 == 0 {
            if let Some(age) = db.oldest_live_key_range_tombstone_age() {
                assert!(
                    age <= d_th,
                    "live range tombstone aged {age} > D_th {d_th} at step {step}"
                );
            }
        }
    }
    // Final settle: every range tombstone must reach its purge.
    let step_size = (d_th / 32).max(1);
    let mut advanced = 0;
    while advanced < 3 * d_th {
        db.advance_clock(step_size);
        advanced += step_size;
        db.maintain().unwrap();
    }
    assert_eq!(
        db.live_key_range_tombstones(),
        0,
        "all range tombstones must eventually purge"
    );
    use std::sync::atomic::Ordering::Relaxed;
    assert_eq!(
        db.stats().persistence_violations.load(Relaxed),
        0,
        "no purge may exceed the threshold"
    );
    assert!(
        db.stats().persistence_latency.max() <= d_th,
        "max purge latency {} > D_th {d_th}",
        db.stats().persistence_latency.max()
    );
}

/// The same deadline for the *value log*: a delete (or overwrite) that
/// kills a separated value turns its vlog frame dead once compaction
/// purges the pointer, and the dead extent must be physically
/// reclaimed — its segment rewritten or deleted — within `D_th` of the
/// covering tombstone's tick. The ratio trigger is disabled so only the
/// deadline rule can drive GC; a drained log proves the rule works.
fn check_vlog_bound(seed: u64, d_th: u64, separation_threshold: usize) {
    let mut o = opts(d_th, TtlAllocation::Uniform);
    o.value_separation_threshold = separation_threshold;
    o.vlog_segment_bytes = 4 << 10;
    o.vlog_gc_dead_ratio_percent = 0;
    let db = Db::open(Arc::new(MemFs::new()), "db", o).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut now = 0u64;
    for step in 0..1_200u32 {
        let k: u32 = rng.gen_range(0..200);
        if rng.gen_bool(0.35) {
            db.delete(format!("key{k:04}").as_bytes()).unwrap();
        } else {
            // Comfortably above every threshold this test runs with.
            db.put(format!("key{k:04}").as_bytes(), &[b'v'; 160])
                .unwrap();
        }
        if step % 300 == 299 {
            // Idle time in sub-margin steps (see check_bound).
            let total = rng.gen_range(1..=2 * d_th);
            let step_size = (d_th / 32).max(1);
            let mut advanced = 0;
            while advanced < total {
                let inc = step_size.min(total - advanced);
                db.advance_clock(inc);
                now += inc;
                advanced += inc;
                db.maintain().unwrap();
            }
        }
        if step % 100 == 0 {
            if let Some(t0) = db.tombstone_gauges().vlog_oldest_dead_tick {
                assert!(
                    now.saturating_sub(t0) <= d_th,
                    "dead vlog extent aged {} > D_th {d_th} at step {step}",
                    now.saturating_sub(t0)
                );
            }
        }
    }
    // Final settle: every dead extent must drain to zero.
    let step_size = (d_th / 32).max(1);
    let mut advanced = 0;
    while advanced < 3 * d_th {
        db.advance_clock(step_size);
        advanced += step_size;
        db.maintain().unwrap();
    }
    use std::sync::atomic::Ordering::Relaxed;
    assert!(
        db.stats().vlog_appends.load(Relaxed) > 0,
        "workload must actually exercise value separation"
    );
    let gauges = db.tombstone_gauges();
    assert_eq!(
        gauges.vlog_dead_bytes, 0,
        "dead vlog extents must drain within D_th"
    );
    assert_eq!(gauges.vlog_oldest_dead_tick, None);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn fade_bound_holds_exponential(seed in any::<u64>(), d_th in 500u64..20_000) {
        check_bound(seed, d_th, TtlAllocation::Exponential, true);
    }

    #[test]
    fn fade_bound_holds_uniform(seed in any::<u64>(), d_th in 500u64..20_000) {
        check_bound(seed, d_th, TtlAllocation::Uniform, true);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn fade_range_bound_holds_exponential(seed in any::<u64>(), d_th in 500u64..20_000) {
        check_range_bound(seed, d_th, TtlAllocation::Exponential);
    }

    #[test]
    fn fade_range_bound_holds_uniform(seed in any::<u64>(), d_th in 500u64..20_000) {
        check_range_bound(seed, d_th, TtlAllocation::Uniform);
    }

    #[test]
    fn vlog_dead_extents_drain_within_deadline(seed in any::<u64>(), d_th in 500u64..20_000) {
        check_vlog_bound(seed, d_th, 64);
    }
}

#[test]
fn vlog_bound_with_tiny_threshold() {
    // Separate *every* value (threshold 1) under an aggressive D_th:
    // the log churns through segments quickly and the deadline must
    // still drain each one.
    check_vlog_bound(11, 600, 1);
}

#[test]
fn fade_range_bound_with_tiny_threshold() {
    check_range_bound(9, 600, TtlAllocation::Uniform);
}

#[test]
fn fade_bound_steady_write_stream() {
    check_bound(7, 3_000, TtlAllocation::Exponential, false);
}

#[test]
fn fade_bound_with_tiny_threshold() {
    // Aggressive thresholds force expiry through every station quickly;
    // the bound must still hold (at higher write amplification).
    check_bound(8, 600, TtlAllocation::Uniform, true);
}

#[test]
fn baseline_without_fade_does_violate() {
    // Sanity check that the property above is not vacuous: the same
    // workload without FADE leaves over-age tombstones behind.
    let mut o = opts(3_000, TtlAllocation::Uniform);
    o.fade = None;
    let db = Db::open(Arc::new(MemFs::new()), "db", o).unwrap();
    for i in 0..300u32 {
        db.put(format!("key{i:04}").as_bytes(), &[b'v'; 24])
            .unwrap();
    }
    for i in 0..300u32 {
        db.delete(format!("key{i:04}").as_bytes()).unwrap();
    }
    db.flush().unwrap();
    db.advance_clock(100_000);
    db.maintain().unwrap();
    let age = db
        .oldest_live_tombstone_age()
        .expect("baseline keeps tombstones");
    assert!(
        age > 3_000,
        "baseline tombstones should exceed any reasonable threshold"
    );
}
