//! Cross-configuration equivalence: the same operation stream must
//! produce identical query results no matter the physical layout (KiWi
//! tile size `h`), the compaction layout (leveling / tiering / lazy
//! leveling), or whether FADE is enabled — these knobs trade
//! performance, never semantics.

use std::sync::Arc;

use acheron::{CompactionLayout, Db, DbOptions};
use acheron_vfs::MemFs;
use acheron_workload::{KeyDistribution, Op, OpMix, WorkloadGen, WorkloadSpec};

fn small(layout: CompactionLayout, h: usize, fade: Option<u64>) -> DbOptions {
    let mut o = DbOptions {
        write_buffer_bytes: 4 << 10,
        level1_target_bytes: 16 << 10,
        target_file_bytes: 8 << 10,
        page_size: 512,
        max_levels: 4,
        layout,
        ..DbOptions::default()
    }
    .with_tile(h);
    if let Some(d) = fade {
        o = o.with_fade(d);
    }
    o
}

/// Run ops and return a canonical fingerprint of the database contents.
fn fingerprint(opts: DbOptions, ops: &[Op]) -> Vec<(Vec<u8>, Vec<u8>)> {
    let db = Db::open(Arc::new(MemFs::new()), "db", opts).unwrap();
    for op in ops {
        match op {
            Op::Put { key, value, dkey } => match dkey {
                Some(d) => db.put_with_dkey(key, value, *d).unwrap(),
                None => db.put(key, value).unwrap(),
            },
            Op::Delete { key } => db.delete(key).unwrap(),
            Op::Get { key } => {
                db.get(key).unwrap();
            }
            Op::Scan { lo, hi } => {
                db.scan(lo, hi).unwrap();
            }
            Op::RangeDeleteSecondary { lo, hi } => db.range_delete_secondary(*lo, *hi).unwrap(),
        }
    }
    db.compact_all().unwrap();
    db.verify_integrity().unwrap();
    db.scan(&[0u8], &[0xffu8; 16])
        .unwrap()
        .into_iter()
        .map(|(k, v)| (k.to_vec(), v.to_vec()))
        .collect()
}

fn mixed_ops(seed: u64, n: usize) -> Vec<Op> {
    let mut spec = WorkloadSpec::new(OpMix::mixed(55, 20, 20, 5), KeyDistribution::uniform(400));
    spec.seed = seed;
    spec.value_len = 24;
    WorkloadGen::new(spec).take(n)
}

#[test]
fn kiwi_tile_sizes_are_read_equivalent() {
    let ops = mixed_ops(11, 2_000);
    let reference = fingerprint(small(CompactionLayout::Leveling, 1, None), &ops);
    assert!(!reference.is_empty(), "workload should leave live data");
    for h in [2usize, 4, 16] {
        let got = fingerprint(small(CompactionLayout::Leveling, h, None), &ops);
        assert_eq!(got, reference, "h={h} diverged");
    }
}

#[test]
fn compaction_layouts_are_read_equivalent() {
    let ops = mixed_ops(22, 2_000);
    let reference = fingerprint(small(CompactionLayout::Leveling, 1, None), &ops);
    for layout in [CompactionLayout::Tiering, CompactionLayout::LazyLeveling] {
        let got = fingerprint(small(layout, 1, None), &ops);
        assert_eq!(got, reference, "{layout:?} diverged");
    }
}

#[test]
fn fade_never_changes_results() {
    let ops = mixed_ops(33, 2_000);
    let reference = fingerprint(small(CompactionLayout::Leveling, 1, None), &ops);
    for d_th in [200u64, 5_000, 1_000_000] {
        let got = fingerprint(small(CompactionLayout::Leveling, 1, Some(d_th)), &ops);
        assert_eq!(got, reference, "FADE D_th={d_th} diverged");
    }
}

#[test]
fn kiwi_with_range_deletes_is_equivalent() {
    // The layout where drops actually fire: timestamped inserts plus
    // window expiries.
    let mut ops = Vec::new();
    for i in 0..3_000u64 {
        ops.push(Op::Put {
            key: acheron_workload::key_bytes(i % 1000 * 7 + i / 1000),
            value: vec![b'p'; 24],
            dkey: Some(i),
        });
        if i % 500 == 499 && i > 600 {
            ops.push(Op::RangeDeleteSecondary { lo: 0, hi: i - 600 });
        }
    }
    let reference = fingerprint(small(CompactionLayout::Leveling, 1, None), &ops);
    for h in [4usize, 16] {
        let got = fingerprint(small(CompactionLayout::Leveling, h, None), &ops);
        assert_eq!(got.len(), reference.len(), "h={h} diverged in size");
        assert_eq!(got, reference, "h={h} diverged");
    }
}
