//! Invariant I4 (durability): any crash point recovers to a state equal
//! to a prefix of acknowledged operations; nothing acknowledged before a
//! flush is ever lost, and WAL-tail truncation loses at most a suffix.

use std::sync::Arc;

use acheron::{Db, DbOptions};
use acheron_vfs::{MemFs, Vfs};

fn opts() -> DbOptions {
    DbOptions {
        write_buffer_bytes: 4 << 10,
        level1_target_bytes: 16 << 10,
        target_file_bytes: 8 << 10,
        page_size: 512,
        max_levels: 4,
        // Crash-point forking copies the directory file-by-file, which
        // is only a consistent "disk image" if no background worker is
        // creating/deleting files mid-copy.
        background_threads: 0,
        ..DbOptions::default()
    }
}

/// Clone a MemFs directory into a fresh MemFs (simulating a crash: the
/// new filesystem sees exactly the bytes that were "on disk").
fn fork_fs(fs: &MemFs, dir: &str) -> Arc<MemFs> {
    let out = Arc::new(MemFs::new());
    out.mkdir_all(dir).unwrap();
    for name in fs.list(dir).unwrap() {
        let path = acheron_vfs::join(dir, &name);
        let data = fs.read_all(&path).unwrap();
        out.write_all(&path, &data).unwrap();
    }
    out
}

#[test]
fn crash_at_every_phase_preserves_acknowledged_writes() {
    let fs = Arc::new(MemFs::new());
    let db = Db::open(fs.clone() as Arc<dyn Vfs>, "db", opts()).unwrap();

    let mut acknowledged: Vec<(String, String)> = Vec::new();
    for i in 0..600u32 {
        let k = format!("key{i:05}");
        let v = format!("value-{i}");
        db.put(k.as_bytes(), v.as_bytes()).unwrap();
        acknowledged.push((k, v));

        // Fork the "disk" at a sample of points and recover each fork.
        if i % 97 == 0 {
            let fork = fork_fs(&fs, "db");
            let recovered = Db::open(fork, "db", opts()).unwrap();
            for (k, v) in &acknowledged {
                let got = recovered.get(k.as_bytes()).unwrap();
                assert_eq!(
                    got.as_deref(),
                    Some(v.as_bytes()),
                    "write {k} lost after crash at op {i}"
                );
            }
            recovered.verify_integrity().unwrap();
        }
    }
}

#[test]
fn crash_during_heavy_deletes_preserves_tombstones() {
    let fs = Arc::new(MemFs::new());
    let db = Db::open(fs.clone() as Arc<dyn Vfs>, "db", opts()).unwrap();
    for i in 0..400u32 {
        db.put(format!("key{i:05}").as_bytes(), &[b'v'; 32])
            .unwrap();
    }
    for i in 0..400u32 {
        if i % 2 == 0 {
            db.delete(format!("key{i:05}").as_bytes()).unwrap();
        }
    }
    let fork = fork_fs(&fs, "db");
    let recovered = Db::open(fork, "db", opts()).unwrap();
    for i in 0..400u32 {
        let got = recovered.get(format!("key{i:05}").as_bytes()).unwrap();
        assert_eq!(got.is_none(), i % 2 == 0, "key{i:05}");
    }
}

#[test]
fn wal_tail_truncation_loses_only_a_suffix() {
    let fs = Arc::new(MemFs::new());
    let db = Db::open(fs.clone() as Arc<dyn Vfs>, "db", opts()).unwrap();
    // Write into the WAL without flushing (values small enough to stay
    // in the memtable).
    let mut o = opts();
    o.write_buffer_bytes = 1 << 20;
    for i in 0..50u32 {
        db.put(format!("w{i:03}").as_bytes(), format!("v{i}").as_bytes())
            .unwrap();
    }
    drop(db);

    // Find the newest WAL and truncate its tail by various amounts.
    let wal_name = fs
        .list("db")
        .unwrap()
        .into_iter()
        .filter(|n| n.ends_with(".log"))
        .max()
        .expect("a wal exists");
    let wal_path = acheron_vfs::join("db", &wal_name);
    let full = fs.read_all(&wal_path).unwrap();

    let mut last_recovered = usize::MAX;
    for cut in [full.len(), full.len() - 3, full.len() / 2, 10, 0] {
        let fork = fork_fs(&fs, "db");
        fork.write_all(&wal_path, &full[..cut.min(full.len())])
            .unwrap();
        let recovered = Db::open(fork, "db", opts()).unwrap();
        // Count how many of the 50 writes survived; must be a prefix.
        let mut survived = 0usize;
        let mut ended = false;
        for i in 0..50u32 {
            let got = recovered.get(format!("w{i:03}").as_bytes()).unwrap();
            match got {
                Some(v) => {
                    assert!(
                        !ended,
                        "write {i} survived after a lost predecessor (not a prefix)"
                    );
                    assert_eq!(v.as_ref(), format!("v{i}").as_bytes());
                    survived += 1;
                }
                None => ended = true,
            }
        }
        assert!(
            survived <= last_recovered,
            "shorter WAL recovered more writes ({survived} > {last_recovered})"
        );
        last_recovered = survived;
    }
    // The untruncated WAL must recover everything.
    let fork = fork_fs(&fs, "db");
    let recovered = Db::open(fork, "db", opts()).unwrap();
    for i in 0..50u32 {
        assert!(recovered
            .get(format!("w{i:03}").as_bytes())
            .unwrap()
            .is_some());
    }
}

#[test]
fn range_tombstones_survive_crash() {
    let fs = Arc::new(MemFs::new());
    let db = Db::open(fs.clone() as Arc<dyn Vfs>, "db", opts()).unwrap();
    for i in 0..100u32 {
        db.put_with_dkey(format!("key{i:03}").as_bytes(), b"v", u64::from(i))
            .unwrap();
    }
    db.range_delete_secondary(20, 40).unwrap();
    let fork = fork_fs(&fs, "db");
    let recovered = Db::open(fork, "db", opts()).unwrap();
    for i in 0..100u32 {
        let got = recovered.get(format!("key{i:03}").as_bytes()).unwrap();
        assert_eq!(got.is_none(), (20..=40).contains(&i), "key{i:03}");
    }
}

#[test]
fn repeated_crash_recover_cycles_converge() {
    let fs = Arc::new(MemFs::new());
    {
        let db = Db::open(fs.clone() as Arc<dyn Vfs>, "db", opts()).unwrap();
        for i in 0..300u32 {
            db.put(format!("key{i:04}").as_bytes(), format!("{i}").as_bytes())
                .unwrap();
        }
    }
    // Ten open/drop cycles without any writes must preserve the state
    // and not balloon storage (manifests are snapshot-compacted on
    // open).
    let mut sizes = Vec::new();
    for _ in 0..10 {
        let db = Db::open(fs.clone() as Arc<dyn Vfs>, "db", opts()).unwrap();
        assert_eq!(db.get(b"key0123").unwrap().as_deref(), Some(&b"123"[..]));
        drop(db);
        sizes.push(fs.total_file_bytes());
    }
    let first = sizes[0];
    for s in &sizes {
        assert!(
            *s < first * 3,
            "storage grew unboundedly across reopen cycles: {sizes:?}"
        );
    }
}

#[test]
fn corrupt_manifest_head_fails_loudly() {
    let fs = Arc::new(MemFs::new());
    {
        let db = Db::open(fs.clone() as Arc<dyn Vfs>, "db", opts()).unwrap();
        db.put(b"k", b"v").unwrap();
    }
    // Find the current manifest and corrupt its first bytes.
    let current = fs.read_all("db/CURRENT").unwrap();
    let manifest = String::from_utf8(current.to_vec())
        .unwrap()
        .trim()
        .to_string();
    let path = acheron_vfs::join("db", &manifest);
    let mut data = fs.read_all(&path).unwrap().to_vec();
    for b in data.iter_mut().take(32) {
        *b ^= 0xff;
    }
    fs.write_all(&path, &data).unwrap();
    let err = Db::open(fs as Arc<dyn Vfs>, "db", opts());
    assert!(err.is_err(), "corrupt manifest head must not open silently");
}
