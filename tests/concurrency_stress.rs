//! Stress tests for the hot-path concurrency overhaul: group-commit
//! WAL, lock-free read views, and commit-exclusion sealing.
//!
//! The four properties under test:
//!
//! 1. **No lock round-trips on the read path**: with maintenance paused
//!    and a writer parked *inside* a WAL fsync, every read-side entry
//!    point (get, scan, snapshot + snapshot read, stats, pressure
//!    gauges) still completes — the writer holds the WAL mutex and the
//!    commit-exclusion token, and readers need neither.
//! 2. **Monotone reads** under many concurrent writers committing
//!    through shared groups.
//! 3. **Atomic `WriteBatch` visibility**: a snapshot can never observe
//!    half a batch, no matter how batches share commit groups.
//! 4. **No lost acks**: a power cut landing anywhere — including
//!    between group formation and the group fsync — never loses an
//!    acknowledged write, and recovery still sees every acked op.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use acheron::{Db, DbOptions, WriteBatch};
use acheron_types::Result;
use acheron_vfs::{FaultVfs, IoStats, MemFs, Vfs, WritableFile};
use bytes::Bytes;

// ---------------------------------------------------------------------
// A Vfs whose WAL fsyncs can be held at a gate
// ---------------------------------------------------------------------

/// Gate shared between the test and the wrapped files: while closed,
/// any `sync()` on a gated file parks until the gate reopens.
struct Gate {
    closed: Mutex<bool>,
    cv: Condvar,
    /// Number of syncs currently parked at the closed gate.
    parked: AtomicUsize,
}

impl Gate {
    fn new() -> Arc<Gate> {
        Arc::new(Gate {
            closed: Mutex::new(false),
            cv: Condvar::new(),
            parked: AtomicUsize::new(0),
        })
    }

    fn close(&self) {
        *self.closed.lock().unwrap() = true;
    }

    fn open(&self) {
        *self.closed.lock().unwrap() = false;
        self.cv.notify_all();
    }

    fn wait_until_parked(&self, n: usize, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        while self.parked.load(Ordering::SeqCst) < n {
            assert!(
                Instant::now() < deadline,
                "no writer reached the gated WAL fsync within {timeout:?}"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

struct GatedFile {
    inner: Box<dyn WritableFile>,
    gate: Arc<Gate>,
}

impl WritableFile for GatedFile {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        self.inner.append(data)
    }

    fn sync(&mut self) -> Result<()> {
        let mut closed = self.gate.closed.lock().unwrap();
        if *closed {
            self.gate.parked.fetch_add(1, Ordering::SeqCst);
            while *closed {
                closed = self.gate.cv.wait(closed).unwrap();
            }
            self.gate.parked.fetch_sub(1, Ordering::SeqCst);
        }
        drop(closed);
        self.inner.sync()
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn finish(&mut self) -> Result<()> {
        self.inner.finish()
    }
}

/// Delegating Vfs that gates `sync()` on WAL segments (`*.log`).
struct GatedWalVfs {
    inner: Arc<dyn Vfs>,
    gate: Arc<Gate>,
}

impl Vfs for GatedWalVfs {
    fn create(&self, path: &str) -> Result<Box<dyn WritableFile>> {
        let inner = self.inner.create(path)?;
        if path.ends_with(".log") {
            Ok(Box::new(GatedFile {
                inner,
                gate: Arc::clone(&self.gate),
            }))
        } else {
            Ok(inner)
        }
    }

    fn open(&self, path: &str) -> Result<Arc<dyn acheron_vfs::RandomAccessFile>> {
        self.inner.open(path)
    }

    fn read_all(&self, path: &str) -> Result<Bytes> {
        self.inner.read_all(path)
    }

    fn write_all(&self, path: &str, data: &[u8]) -> Result<()> {
        self.inner.write_all(path, data)
    }

    fn delete(&self, path: &str) -> Result<()> {
        self.inner.delete(path)
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        self.inner.rename(from, to)
    }

    fn exists(&self, path: &str) -> bool {
        self.inner.exists(path)
    }

    fn list(&self, dir: &str) -> Result<Vec<String>> {
        self.inner.list(dir)
    }

    fn mkdir_all(&self, path: &str) -> Result<()> {
        self.inner.mkdir_all(path)
    }

    fn sync_dir(&self, dir: &str) -> Result<()> {
        self.inner.sync_dir(dir)
    }

    fn file_size(&self, path: &str) -> Result<u64> {
        self.inner.file_size(path)
    }

    fn io_stats(&self) -> Arc<IoStats> {
        self.inner.io_stats()
    }
}

// ---------------------------------------------------------------------
// 1. Reads never take a lock round-trip through the write path
// ---------------------------------------------------------------------

/// With maintenance paused and a writer parked *inside* the WAL fsync
/// (holding the WAL mutex and the commit-exclusion token), every read
/// entry point completes promptly. Under the old design the writer
/// held the global state lock across the fsync and this test would
/// hang; the view-based read path never touches that lock.
#[test]
fn reads_proceed_while_writer_blocked_in_wal_fsync() {
    let gate = Gate::new();
    let fs = Arc::new(GatedWalVfs {
        inner: Arc::new(MemFs::new()),
        gate: Arc::clone(&gate),
    });
    let opts = DbOptions {
        wal_sync: true,
        background_threads: 2,
        ..DbOptions::default()
    };
    let db = Db::open(fs, "db", opts).unwrap();
    for k in 0u64..100 {
        db.put(format!("key{k:04}").as_bytes(), b"prefill").unwrap();
    }
    db.wait_idle().unwrap();

    // Paused maintenance + a writer mid-fsync: the two scenarios the
    // old lock scheme entangled with reads.
    let _pause = db.pause_maintenance();
    gate.close();

    let writer = {
        let db = db.clone();
        std::thread::spawn(move || db.put(b"blocked-key", b"blocked-value"))
    };
    gate.wait_until_parked(1, Duration::from_secs(10));

    // Run every read-side entry point on a helper thread so a
    // regression shows up as a clean timeout, not a hung test binary.
    let (tx, rx) = mpsc::channel();
    {
        let db = db.clone();
        std::thread::spawn(move || {
            let got = db.get(b"key0042").unwrap();
            assert_eq!(got.as_deref(), Some(&b"prefill"[..]));
            // The in-flight (unacknowledged) write must not be visible.
            assert_eq!(db.get(b"blocked-key").unwrap(), None);
            let rows = db.scan(b"key0000", b"key0009").unwrap();
            assert_eq!(rows.len(), 10);
            let snap = db.snapshot();
            assert_eq!(
                db.get_at(&snap, b"key0007").unwrap().as_deref(),
                Some(&b"prefill"[..])
            );
            let mut it = db.range_iter(b"key0090", b"key0099").unwrap();
            let mut n = 0;
            while it.next_entry().unwrap().is_some() {
                n += 1;
            }
            assert_eq!(n, 10);
            let pairs = db.stats().snapshot().to_pairs();
            assert!(pairs.iter().any(|(k, _)| k == "read_view_swaps"));
            let _ = db.write_pressure();
            db.verify_integrity().unwrap();
            tx.send(()).unwrap();
        });
    }
    rx.recv_timeout(Duration::from_secs(10))
        .expect("read path blocked behind a writer parked in a WAL fsync");

    gate.open();
    writer.join().unwrap().unwrap();
    assert_eq!(
        db.get(b"blocked-key").unwrap().as_deref(),
        Some(&b"blocked-value"[..])
    );
}

// ---------------------------------------------------------------------
// 2. Monotone reads under concurrent group-committed writers
// ---------------------------------------------------------------------

#[test]
fn monotone_reads_under_concurrent_writers() {
    const WRITERS: usize = 4;
    const READERS: usize = 3;
    const ROUNDS: u64 = 60;
    const KEYS_PER_WRITER: u64 = 50;

    let opts = DbOptions {
        write_buffer_bytes: 8 << 10,
        level1_target_bytes: 32 << 10,
        target_file_bytes: 16 << 10,
        background_threads: 2,
        max_levels: 4,
        ..DbOptions::default()
    };
    let db = Db::open(Arc::new(MemFs::new()), "db", opts).unwrap();
    let stop = AtomicBool::new(false);
    let reads = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let db = db.clone();
            s.spawn(move || {
                for round in 0..ROUNDS {
                    for k in 0..KEYS_PER_WRITER {
                        let key = format!("w{w:02}k{k:03}");
                        db.put(key.as_bytes(), format!("{round:020}").as_bytes())
                            .unwrap();
                    }
                }
            });
        }
        for r in 0..READERS {
            let db = db.clone();
            let stop = &stop;
            let reads = &reads;
            s.spawn(move || {
                let mut last = vec![0u64; WRITERS * KEYS_PER_WRITER as usize];
                let mut i = r as u64;
                while !stop.load(Ordering::Acquire) {
                    i = (i + 41) % (WRITERS as u64 * KEYS_PER_WRITER);
                    let (w, k) = (i / KEYS_PER_WRITER, i % KEYS_PER_WRITER);
                    let key = format!("w{w:02}k{k:03}");
                    if let Some(v) = db.get(key.as_bytes()).unwrap() {
                        let round: u64 = std::str::from_utf8(&v)
                            .unwrap()
                            .trim_start_matches('0')
                            .parse()
                            .unwrap_or(0);
                        assert!(
                            round >= last[i as usize],
                            "monotone-read violation on {key}: saw {round} after {}",
                            last[i as usize]
                        );
                        last[i as usize] = round;
                    }
                    reads.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Keep the readers checking until every writer has published its
        // final round (scoped threads cannot be joined selectively, so
        // poll the final values instead).
        let last_value = format!("{:020}", ROUNDS - 1);
        loop {
            let done = (0..WRITERS).all(|w| {
                let key = format!("w{w:02}k{:03}", KEYS_PER_WRITER - 1);
                db.get(key.as_bytes())
                    .unwrap()
                    .is_some_and(|v| v[..] == *last_value.as_bytes())
            });
            if done {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        stop.store(true, Ordering::Release);
    });

    assert!(reads.load(Ordering::Relaxed) > 0);
    db.wait_idle().unwrap();
    db.verify_integrity().unwrap();
    for w in 0..WRITERS {
        for k in 0..KEYS_PER_WRITER {
            let key = format!("w{w:02}k{k:03}");
            let v = db.get(key.as_bytes()).unwrap().unwrap();
            assert_eq!(&v[..], format!("{:020}", ROUNDS - 1).as_bytes());
        }
    }
}

// ---------------------------------------------------------------------
// 3. WriteBatch atomicity at snapshots under group commit
// ---------------------------------------------------------------------

/// Each writer commits batches whose two keys always carry the same
/// value; a snapshot taken at any instant must see the pair equal —
/// group commit merges many batches into one WAL sync, but visibility
/// still moves in whole-batch (indeed whole-group) steps.
#[test]
fn write_batches_stay_atomic_at_snapshots() {
    const WRITERS: usize = 4;
    const ROUNDS: u64 = 300;

    let opts = DbOptions {
        write_buffer_bytes: 16 << 10,
        background_threads: 2,
        ..DbOptions::default()
    };
    let db = Db::open(Arc::new(MemFs::new()), "db", opts).unwrap();
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let db = db.clone();
            s.spawn(move || {
                for round in 0..ROUNDS {
                    let mut batch = WriteBatch::new();
                    let v = format!("{round:06}");
                    batch.put(format!("pair:a:{w}").as_bytes(), v.as_bytes());
                    batch.put(format!("pair:b:{w}").as_bytes(), v.as_bytes());
                    db.write_batch(batch).unwrap();
                }
            });
        }
        for _ in 0..2 {
            let db = db.clone();
            let stop = &stop;
            s.spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    let snap = db.snapshot();
                    for w in 0..WRITERS {
                        let a = db.get_at(&snap, format!("pair:a:{w}").as_bytes()).unwrap();
                        let b = db.get_at(&snap, format!("pair:b:{w}").as_bytes()).unwrap();
                        assert_eq!(
                            a,
                            b,
                            "snapshot at seqno {} split writer {w}'s batch",
                            snap.seqno()
                        );
                    }
                    // A snapshot is frozen: re-reading must reproduce it.
                    let again = db.get_at(&snap, b"pair:a:0").unwrap();
                    let first = db.get_at(&snap, b"pair:a:0").unwrap();
                    assert_eq!(again, first);
                }
            });
        }
        // Wait until every writer has finished its last round.
        let last_value = format!("{:06}", ROUNDS - 1);
        loop {
            let done = (0..WRITERS).all(|w| {
                db.get(format!("pair:b:{w}").as_bytes())
                    .unwrap()
                    .is_some_and(|v| v[..] == *last_value.as_bytes())
            });
            if done {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        stop.store(true, Ordering::Release);
    });
    db.verify_integrity().unwrap();
}

// ---------------------------------------------------------------------
// 4. Group-commit stats accounting
// ---------------------------------------------------------------------

/// Every committed request either paid a WAL sync (as a group leader)
/// or inherited one (counted in `wal_syncs_saved`): the two counters
/// must sum to the number of commits, and the group-size histogram
/// must cover every committed op.
#[test]
fn group_commit_stats_account_for_every_commit() {
    const WRITERS: usize = 4;
    const OPS: u64 = 250;

    let opts = DbOptions {
        wal_sync: true,
        background_threads: 2,
        ..DbOptions::default()
    };
    let db = Db::open(Arc::new(MemFs::new()), "db", opts).unwrap();
    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let db = db.clone();
            s.spawn(move || {
                for i in 0..OPS {
                    db.put(format!("s{w}:{i:05}").as_bytes(), b"v").unwrap();
                }
            });
        }
    });
    db.wait_idle().unwrap();

    let stats = db.stats().snapshot();
    let total = WRITERS as u64 * OPS;
    assert!(stats.commit_groups >= 1);
    assert!(stats.commit_groups <= total);
    assert_eq!(stats.wal_syncs, stats.commit_groups);
    assert_eq!(
        stats.wal_syncs + stats.wal_syncs_saved,
        total,
        "every commit either paid a sync or inherited one"
    );
    assert_eq!(stats.commit_group_ops.count, stats.commit_groups);
    // Views swap on structural changes (seal/flush/compaction/range
    // delete) only — never once per commit.
    assert!(stats.read_view_swaps < stats.commit_groups);
    // The wire-visible pairs expose the same counters.
    let pairs = db.stats().snapshot().to_pairs();
    for key in [
        "commit_groups",
        "wal_syncs",
        "wal_syncs_saved",
        "read_view_swaps",
    ] {
        assert!(
            pairs.iter().any(|(k, _)| k == key),
            "stats pair {key} missing from to_pairs()"
        );
    }
}

// ---------------------------------------------------------------------
// 5. No lost acks across a power cut
// ---------------------------------------------------------------------

/// Concurrent writers race a power cut armed at an arbitrary durability
/// point — including between group formation and the group fsync. An
/// acknowledged write must be readable after reboot + recovery; an
/// unacknowledged one may or may not survive, but must never make the
/// recovered image inconsistent.
#[test]
fn no_lost_acks_when_power_cut_races_group_commit() {
    for cut_point in [5u64, 20, 45] {
        let fault = Arc::new(FaultVfs::with_seed(Arc::new(MemFs::new()), cut_point));
        let opts = DbOptions {
            wal_sync: true,
            background_threads: 2,
            write_buffer_bytes: 8 << 10,
            level1_target_bytes: 32 << 10,
            target_file_bytes: 16 << 10,
            max_levels: 4,
            ..DbOptions::default()
        };
        let db = Db::open(Arc::<FaultVfs>::clone(&fault), "db", opts.clone()).unwrap();
        fault.reset_points();
        fault.arm_power_cut_at(cut_point);

        let acked: Mutex<Vec<(usize, u64)>> = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for w in 0..4usize {
                let db = db.clone();
                let acked = &acked;
                s.spawn(move || {
                    for i in 0..400u64 {
                        let key = format!("t{w}i{i:05}");
                        let value = format!("v{w}:{i}");
                        match db.put(key.as_bytes(), value.as_bytes()) {
                            Ok(()) => acked.lock().unwrap().push((w, i)),
                            // First failure after the cut: power is out,
                            // nothing further can be acknowledged.
                            Err(_) => break,
                        }
                    }
                });
            }
        });
        assert!(
            fault.has_crashed(),
            "cut point {cut_point} was never reached; workload too small"
        );
        drop(db);

        fault.reboot();
        let db = Db::open(Arc::<FaultVfs>::clone(&fault), "db", opts).unwrap();
        let acked = acked.into_inner().unwrap();
        assert!(!acked.is_empty(), "no write was acked before the cut");
        for (w, i) in &acked {
            let key = format!("t{w}i{i:05}");
            let got = db.get(key.as_bytes()).unwrap();
            assert_eq!(
                got.as_deref(),
                Some(format!("v{w}:{i}").as_bytes()),
                "acked write {key} lost across power cut at point {cut_point}"
            );
        }
        db.verify_integrity().unwrap();
    }
}
