//! Snapshot consistency for scans and range iterators: a scan taken
//! through a snapshot must return exactly what a scan returned at the
//! moment the snapshot was created, no matter how many writes, range
//! deletes, flushes, and compactions happen in between.

use std::sync::Arc;

use acheron::{Db, DbOptions};
use acheron_vfs::MemFs;
use bytes::Bytes;

fn opts() -> DbOptions {
    DbOptions {
        write_buffer_bytes: 4 << 10,
        level1_target_bytes: 16 << 10,
        target_file_bytes: 8 << 10,
        page_size: 512,
        max_levels: 4,
        ..DbOptions::default()
    }
}

type Rows = Vec<(Bytes, Bytes)>;

#[test]
fn snapshot_scans_are_frozen_across_churn() {
    let db = Db::open(Arc::new(MemFs::new()), "db", opts()).unwrap();
    for i in 0..800u32 {
        db.put_with_dkey(
            format!("key{i:04}").as_bytes(),
            format!("v{i}").as_bytes(),
            u64::from(i),
        )
        .unwrap();
    }
    for i in (0..800u32).step_by(7) {
        db.delete(format!("key{i:04}").as_bytes()).unwrap();
    }

    // Freeze three observation points at different moments.
    let snap1 = db.snapshot();
    let expect1: Rows = db.scan(b"key0000", b"key9999").unwrap();

    db.range_delete_secondary(100, 300).unwrap();
    let snap2 = db.snapshot();
    let expect2: Rows = db.scan(b"key0000", b"key9999").unwrap();

    for i in 0..800u32 {
        db.put(format!("key{i:04}").as_bytes(), b"overwritten")
            .unwrap();
    }
    let snap3 = db.snapshot();
    let expect3: Rows = db.scan(b"key0000", b"key9999").unwrap();

    // Churn hard: more overwrites, another range delete, full compaction.
    for i in 0..800u32 {
        db.put(format!("key{i:04}").as_bytes(), b"final").unwrap();
    }
    db.range_delete_secondary(0, 1_000_000).unwrap();
    db.compact_all().unwrap();

    assert_eq!(db.scan_at(&snap1, b"key0000", b"key9999").unwrap(), expect1);
    assert_eq!(db.scan_at(&snap2, b"key0000", b"key9999").unwrap(), expect2);
    assert_eq!(db.scan_at(&snap3, b"key0000", b"key9999").unwrap(), expect3);

    // Streaming iterators agree with the materialized snapshots.
    let mut it = db.range_iter_at(&snap2, b"key0000", b"key9999").unwrap();
    let mut streamed = Vec::new();
    while let Some(kv) = it.next_entry().unwrap() {
        streamed.push(kv);
    }
    assert_eq!(streamed, expect2);

    // The range delete at snapshot 2 actually did something: expect2 is
    // a strict subset of expect1's keys.
    assert!(expect2.len() < expect1.len());
    // And the final live view is empty (everything range-deleted).
    assert!(db.scan(b"key0000", b"key9999").unwrap().is_empty());
}

#[test]
fn dropping_snapshots_releases_pinned_versions() {
    let db = Db::open(Arc::new(MemFs::new()), "db", opts()).unwrap();
    for i in 0..500u32 {
        db.put(format!("key{i:04}").as_bytes(), &[b'x'; 64])
            .unwrap();
    }
    let snap = db.snapshot();
    for i in 0..500u32 {
        db.put(format!("key{i:04}").as_bytes(), &[b'y'; 64])
            .unwrap();
    }
    db.compact_all().unwrap();
    let pinned_bytes = db.table_bytes();
    let pinned_entries: u64 = db.level_summary().iter().map(|l| l.entries).sum();
    assert_eq!(pinned_entries, 1000, "snapshot pins both strata");

    drop(snap);
    // Old versions are reclaimed when compaction next touches them; a
    // fresh overwrite round forces the bottom to be rewritten.
    for i in 0..500u32 {
        db.put(format!("key{i:04}").as_bytes(), &[b'z'; 64])
            .unwrap();
    }
    db.compact_all().unwrap();
    let released_bytes = db.table_bytes();
    let released_entries: u64 = db.level_summary().iter().map(|l| l.entries).sum();
    assert_eq!(
        released_entries, 500,
        "without the snapshot only the newest stratum survives"
    );
    assert!(
        released_bytes < pinned_bytes,
        "reclaim should shrink the footprint ({released_bytes} vs {pinned_bytes})"
    );
}

#[test]
fn snapshot_sees_tombstone_not_predecessor() {
    let db = Db::open(Arc::new(MemFs::new()), "db", opts()).unwrap();
    db.put(b"k", b"v1").unwrap();
    db.delete(b"k").unwrap();
    let snap_deleted = db.snapshot();
    db.put(b"k", b"v2").unwrap();
    db.compact_all().unwrap();
    assert_eq!(db.get_at(&snap_deleted, b"k").unwrap(), None);
    assert_eq!(db.get(b"k").unwrap().as_deref(), Some(&b"v2"[..]));
    assert!(db.scan_at(&snap_deleted, b"k", b"k").unwrap().is_empty());
}

#[test]
fn range_delete_respects_snapshot_boundaries() {
    let db = Db::open(Arc::new(MemFs::new()), "db", opts()).unwrap();
    db.put_with_dkey(b"a", b"v", 10).unwrap();
    let before_rt = db.snapshot();
    db.range_delete_secondary(5, 15).unwrap();
    let after_rt = db.snapshot();
    db.compact_all().unwrap();
    // A snapshot taken before the range delete does not see it.
    assert_eq!(
        db.get_at(&before_rt, b"a").unwrap().as_deref(),
        Some(&b"v"[..])
    );
    // A snapshot taken after does.
    assert_eq!(db.get_at(&after_rt, b"a").unwrap(), None);
}
