//! Property tests over the storage formats themselves: any batch of
//! entries written through a `TableBuilder` reads back identically
//! (point and scan) across KiWi granularities, and any record sequence
//! written through the WAL framing survives every prefix truncation as
//! a record prefix.

use std::sync::Arc;

use acheron_sstable::{Table, TableBuilder, TableOptions};
use acheron_types::Entry;
use acheron_vfs::{MemFs, Vfs};
use acheron_wal::{LogReader, LogWriter, ReadOutcome};
use proptest::prelude::*;

/// Distinct (key, seqno) pairs → valid table input after sorting.
fn entries_strategy() -> impl Strategy<Value = Vec<Entry>> {
    prop::collection::btree_map(
        (any::<u16>(), 1u64..10_000),
        (any::<u8>(), any::<u64>(), prop::bool::ANY),
        1..250,
    )
    .prop_map(|m| {
        let mut entries: Vec<Entry> = m
            .into_iter()
            .map(|((k, seq), (vbyte, dkey, tombstone))| {
                let key = format!("pk{k:05}").into_bytes();
                if tombstone {
                    Entry::tombstone(key, seq, dkey)
                } else {
                    Entry::put(key, vec![vbyte; (vbyte % 40) as usize], seq, dkey)
                }
            })
            .collect();
        entries.sort_by_key(|e| e.internal_key());
        entries
    })
}

fn build_table(entries: &[Entry], h: usize, page: usize) -> Arc<Table> {
    let fs = MemFs::new();
    let opts = TableOptions {
        pages_per_tile: h,
        page_size: page,
        ..Default::default()
    };
    let mut b = TableBuilder::new(fs.create("t").unwrap(), opts).unwrap();
    for e in entries {
        b.add(e).unwrap();
    }
    b.finish().unwrap();
    Table::open(fs.open("t").unwrap()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn table_round_trips_across_tile_sizes(
        entries in entries_strategy(),
        h in prop::sample::select(vec![1usize, 3, 8]),
        page in prop::sample::select(vec![128usize, 512, 4096]),
    ) {
        let table = build_table(&entries, h, page);
        // Full scan equals input.
        let mut it = table.iter(vec![]);
        it.seek_to_first().unwrap();
        let scanned = it.drain().unwrap();
        prop_assert_eq!(&scanned, &entries);
        // Every entry is point-readable as the newest version at its own
        // seqno.
        for e in &entries {
            let versions = table.get_versions(&e.key, e.seqno, &[]).unwrap();
            prop_assert!(
                versions.iter().any(|v| v == e),
                "entry {:?}@{} not found",
                e.key,
                e.seqno
            );
        }
        // Stats agree with content.
        prop_assert_eq!(table.stats().entry_count, entries.len() as u64);
        let tombstones = entries.iter().filter(|e| e.is_tombstone()).count() as u64;
        prop_assert_eq!(table.stats().tombstone_count, tombstones);
    }

    #[test]
    fn wal_prefix_truncation_yields_record_prefix(
        records in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..600), 1..30),
        cut_frac in 0.0f64..1.0,
    ) {
        let fs = MemFs::new();
        let mut w = LogWriter::new(fs.create("wal").unwrap());
        for r in &records {
            w.add_record(r).unwrap();
        }
        w.finish().unwrap();
        let data = fs.read_all("wal").unwrap();
        let cut = ((data.len() as f64) * cut_frac) as usize;
        let mut reader = LogReader::new(data.slice(..cut));
        let mut recovered = Vec::new();
        while let ReadOutcome::Record(rec) = reader.next_record() {
            recovered.push(rec.to_vec());
        }
        prop_assert!(recovered.len() <= records.len());
        prop_assert_eq!(
            recovered.as_slice(),
            &records[..recovered.len()],
            "recovered records must be a prefix of what was written"
        );
    }
}
