//! End-to-end tests for the service layer: the wire must change the
//! medium, never the answer.
//!
//! * the same seeded workload driven embedded and over loopback TCP is
//!   *result-identical* (per-op digests and full-scan byte equality);
//! * concurrent clients observe linearizable, monotone values;
//! * malformed frames (garbage, bad checksums, lying lengths,
//!   truncation) can neither panic nor wedge the server;
//! * engine stall pressure surfaces as `Busy` at the wire instead of
//!   unbounded queueing, and clears once maintenance catches up;
//! * graceful shutdown answers what was already accepted and then
//!   refuses new connections.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use acheron::{Db, DbOptions};
use acheron_server::wire::{encode_frame, FrameDecoder, DEFAULT_MAX_FRAME_BYTES};
use acheron_server::{Client, ClientOptions, Request, Response, Server, ServerOptions};
use acheron_vfs::MemFs;
use acheron_workload::{run_ops, KeyDistribution, OpMix, WorkloadGen, WorkloadSpec};

fn open_db(opts: DbOptions) -> Arc<Db> {
    Arc::new(Db::open(Arc::new(MemFs::new()), "db", opts).unwrap())
}

fn start(db: &Arc<Db>) -> Server {
    Server::start(Arc::clone(db), "127.0.0.1:0", ServerOptions::default()).unwrap()
}

#[test]
fn embedded_and_networked_runs_are_result_identical() {
    let ops = WorkloadGen::new(WorkloadSpec::new(
        OpMix::mixed(40, 10, 40, 10),
        KeyDistribution::uniform(2_000),
    ))
    .take(6_000);

    let embedded_db = open_db(DbOptions::small());
    let embedded = run_ops(&*embedded_db, &ops).unwrap();

    let served_db = open_db(DbOptions::small());
    let mut server = start(&served_db);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let remote = run_ops(&mut client, &ops).unwrap();

    // Per-op read results digested identically...
    assert_eq!(embedded.check_digest, remote.check_digest);
    assert_eq!(embedded.get_hits, remote.get_hits);
    assert_eq!(embedded.get_misses, remote.get_misses);
    assert_eq!(embedded.scan_rows, remote.scan_rows);

    // ...and the final database contents are byte-identical, read back
    // through the wire.
    let embedded_rows: Vec<(Vec<u8>, Vec<u8>)> = embedded_db
        .scan(b"", &[0xff; 16])
        .unwrap()
        .into_iter()
        .map(|(k, v)| (k.to_vec(), v.to_vec()))
        .collect();
    let remote_rows = client.scan(b"", &[0xff; 16]).unwrap();
    assert_eq!(embedded_rows, remote_rows);
    assert!(!embedded_rows.is_empty(), "workload must leave data behind");

    server.shutdown();
    embedded_db.verify_integrity().unwrap();
    served_db.verify_integrity().unwrap();
}

#[test]
fn concurrent_clients_observe_monotone_values() {
    // Small buffers so the run crosses flushes and compactions.
    let db = open_db(DbOptions {
        write_buffer_bytes: 8 << 10,
        level1_target_bytes: 32 << 10,
        target_file_bytes: 16 << 10,
        page_size: 1024,
        max_levels: 4,
        ..DbOptions::default()
    });
    let mut server = start(&db);
    let addr = server.local_addr();
    let stop = AtomicBool::new(false);

    crossbeam::scope(|s| {
        // Writer client: monotone values per key.
        s.spawn(|_| {
            let mut client = Client::connect(addr).unwrap();
            for round in 0u64..25 {
                for k in 0u64..150 {
                    let key = format!("key{k:05}");
                    client
                        .put(key.as_bytes(), format!("{round:020}").as_bytes())
                        .unwrap();
                }
            }
            stop.store(true, Ordering::Release);
        });
        // Reader clients: values must never regress within one reader's
        // observation sequence.
        for t in 0..2 {
            let stop = &stop;
            s.spawn(move |_| {
                let mut client = Client::connect(addr).unwrap();
                let mut last_seen: Vec<u64> = vec![0; 150];
                let mut k = t as u64;
                while !stop.load(Ordering::Acquire) {
                    k = (k + 37) % 150;
                    let key = format!("key{k:05}");
                    if let Some(v) = client.get(key.as_bytes()).unwrap() {
                        let round: u64 = std::str::from_utf8(&v)
                            .unwrap()
                            .trim_start_matches('0')
                            .parse()
                            .unwrap_or(0);
                        assert!(
                            round >= last_seen[k as usize],
                            "value regressed for {key}: {round} < {}",
                            last_seen[k as usize]
                        );
                        last_seen[k as usize] = round;
                    }
                }
            });
        }
    })
    .unwrap();

    let mut client = Client::connect(addr).unwrap();
    for k in 0u64..150 {
        let v = client
            .get(format!("key{k:05}").as_bytes())
            .unwrap()
            .unwrap();
        assert_eq!(&v[..], format!("{:020}", 24).as_bytes());
    }
    server.shutdown();
    db.verify_integrity().unwrap();
}

/// Write raw bytes at the server and drain whatever comes back until it
/// closes the connection (or 5s pass, which would mean a wedged server).
fn poke_raw(addr: std::net::SocketAddr, bytes: &[u8]) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    // The server may close mid-write on garbage; that's fine. Closing
    // our write half tells the server no more bytes are coming, which
    // turns a trailing partial frame into a detectable truncation.
    let _ = stream.write_all(bytes);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = [0u8; 4096];
    loop {
        match stream.read(&mut sink) {
            Ok(0) => return,
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                panic!("server neither answered nor closed a poisoned connection")
            }
            Err(_) => return,
        }
    }
}

#[test]
fn malformed_frames_cannot_panic_or_wedge_the_server() {
    let db = open_db(DbOptions::small());
    let mut server = start(&db);
    let addr = server.local_addr();

    // A frame with a checksum that doesn't match its payload.
    let mut bad_crc = Vec::new();
    encode_frame(&Request::Ping.encode(), &mut bad_crc);
    let last = bad_crc.len() - 1;
    bad_crc[last] ^= 0xff;
    poke_raw(addr, &bad_crc);

    // A length prefix far beyond the frame cap.
    let mut oversize = Vec::new();
    oversize.extend_from_slice(&(u32::MAX).to_le_bytes());
    oversize.extend_from_slice(&0u32.to_le_bytes());
    poke_raw(addr, &oversize);

    // A valid header whose body never arrives (close mid-frame).
    let mut truncated = Vec::new();
    encode_frame(&Request::Stats.encode(), &mut truncated);
    poke_raw(addr, &truncated[..truncated.len() - 1]);

    // A well-formed frame whose payload is garbage for the codec.
    let mut bad_payload = Vec::new();
    encode_frame(&[0xde, 0xad, 0xbe, 0xef], &mut bad_payload);
    poke_raw(addr, &bad_payload);

    // Deterministic pseudo-random garbage streams.
    let mut seed = 0x243f6a8885a308d3u64;
    for round in 0..16 {
        let n = 32 + round * 17;
        let bytes: Vec<u8> = (0..n)
            .map(|_| {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (seed >> 33) as u8
            })
            .collect();
        poke_raw(addr, &bytes);
    }

    // After all of that the server still answers a well-formed client.
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    client.put(b"still", b"alive").unwrap();
    assert_eq!(
        client.get(b"still").unwrap().as_deref(),
        Some(&b"alive"[..])
    );
    let stats = client.stats().unwrap();
    let proto_errors = stats
        .iter()
        .find(|(n, _)| n == "server_protocol_errors")
        .map(|(_, v)| *v)
        .unwrap();
    assert!(
        proto_errors >= 4,
        "expected the poisoned connections to be counted"
    );
    server.shutdown();
}

/// The sort-key range-delete frame: erases a prefix over the wire with
/// one request, and its malformed variants (missing bounds, lying
/// varint lengths, trailing bytes) can neither panic nor wedge the
/// server.
#[test]
fn range_delete_frame_round_trips_and_survives_malformed_payloads() {
    let db = open_db(DbOptions::small());
    let mut server = start(&db);
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();

    for i in 0..40u32 {
        client.put(format!("user:{i:04}").as_bytes(), b"v").unwrap();
    }
    client.put(b"zz-survivor", b"v").unwrap();
    client.range_delete_keys(b"user:", b"user:\xff").unwrap();
    for i in 0..40u32 {
        assert_eq!(
            client.get(format!("user:{i:04}").as_bytes()).unwrap(),
            None,
            "user:{i:04} must be erased by the wire range delete"
        );
    }
    assert_eq!(
        client.scan(b"", &[0xff; 16]).unwrap(),
        vec![(b"zz-survivor".to_vec(), b"v".to_vec())],
        "only the key outside the range survives"
    );

    // Malformed REQ_KRDEL payloads, each inside a well-formed frame: a
    // broken payload must close that connection (a protocol error), not
    // panic the decoder or wedge the accept loop.
    const REQ_KRDEL: u8 = 10;
    let malformed: Vec<Vec<u8>> = vec![
        vec![REQ_KRDEL],       // no bounds at all
        vec![REQ_KRDEL, 0x05], // lo claims 5 bytes, has none
        vec![
            REQ_KRDEL, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01,
        ], // absurd varint length
        {
            let mut p = vec![REQ_KRDEL];
            p.extend_from_slice(&[0x02, b'l', b'o']); // valid lo...
            p.push(0x09); // ...hi claims 9 bytes, has none
            p
        },
        {
            let mut p = vec![REQ_KRDEL];
            p.extend_from_slice(&[0x02, b'l', b'o', 0x02, b'h', b'i']);
            p.push(0xAA); // trailing byte after a complete message
            p
        },
    ];
    for payload in &malformed {
        let mut framed = Vec::new();
        encode_frame(payload, &mut framed);
        poke_raw(addr, &framed);
    }

    // The server still answers a well-formed client afterwards, and the
    // poisoned connections were counted.
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    assert_eq!(
        client.get(b"zz-survivor").unwrap().as_deref(),
        Some(&b"v"[..])
    );
    let stats = client.stats().unwrap();
    let proto_errors = stats
        .iter()
        .find(|(n, _)| n == "server_protocol_errors")
        .map(|(_, v)| *v)
        .unwrap();
    assert!(
        proto_errors >= malformed.len() as u64,
        "expected {} poisoned connections counted, got {proto_errors}",
        malformed.len()
    );
    server.shutdown();
    db.verify_integrity().unwrap();
}

#[test]
fn stalled_engine_sheds_writes_with_busy_then_recovers() {
    // Background mode with a tiny write buffer and a one-deep sealed
    // queue: with maintenance paused, a couple of kilobytes of writes
    // push the engine into its stall regime.
    let db = open_db(DbOptions {
        write_buffer_bytes: 4 << 10,
        max_imm_memtables: 1,
        background_threads: 1,
        ..DbOptions::default()
    });
    let mut server = start(&db);
    let mut client = Client::connect_with(
        server.local_addr(),
        ClientOptions {
            busy_retries: 0,
            ..ClientOptions::default()
        },
    )
    .unwrap();

    let pause = db.pause_maintenance();
    let mut saw_busy = false;
    for i in 0..200u32 {
        let req = Request::Put {
            key: format!("key{i:06}").into_bytes(),
            value: vec![b'x'; 256],
            dkey: None,
        };
        match client.request(&req).unwrap() {
            Response::Unit => {}
            Response::Busy => {
                saw_busy = true;
                break;
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    assert!(
        saw_busy,
        "paused maintenance + tiny buffers must trigger Busy shedding"
    );

    // Reads are still served while writes are shed.
    client.get(b"key000000").unwrap();

    // The typed client surfaces exhausted busy retries as Error::Busy.
    let err = client.put(b"one-more", b"write").unwrap_err();
    assert!(err.is_busy(), "expected a busy error, got {err}");

    // Resume maintenance; once the engine catches up, writes flow again.
    drop(pause);
    db.wait_idle().unwrap();
    client.put(b"after", b"recovery").unwrap();
    assert_eq!(
        client.get(b"after").unwrap().as_deref(),
        Some(&b"recovery"[..])
    );

    let stats = client.stats().unwrap();
    let busy = stats
        .iter()
        .find(|(n, _)| n == "server_busy_responses")
        .map(|(_, v)| *v)
        .unwrap();
    assert!(busy >= 1);
    server.shutdown();
}

#[test]
fn graceful_shutdown_answers_accepted_work_then_refuses_connections() {
    let db = open_db(DbOptions::small());
    let mut server = start(&db);
    let addr = server.local_addr();

    // Send a pipelined burst and give the server a moment to process it
    // (responses land in the client's socket buffer), then shut down.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut burst = Vec::new();
    let n = 50u32;
    for i in 0..n {
        let req = Request::Put {
            key: format!("key{i:04}").into_bytes(),
            value: b"v".to_vec(),
            dkey: None,
        };
        encode_frame(&req.encode(), &mut burst);
    }
    stream.write_all(&burst).unwrap();
    std::thread::sleep(Duration::from_millis(200));
    server.shutdown();

    // Every accepted request was answered before the server stopped.
    let mut decoder = FrameDecoder::new(DEFAULT_MAX_FRAME_BYTES);
    let mut responses = 0u32;
    let mut buf = [0u8; 4096];
    'read: loop {
        while let Some(frame) = decoder.next_frame().unwrap() {
            assert_eq!(Response::decode(&frame).unwrap(), Response::Unit);
            responses += 1;
            if responses == n {
                break 'read;
            }
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(read) => decoder.feed(&buf[..read]),
            Err(_) => break,
        }
    }
    assert_eq!(
        responses, n,
        "in-flight pipeline must be drained on shutdown"
    );

    // The writes really landed.
    assert!(db.get(b"key0049").unwrap().is_some());

    // New connections are refused (or at best immediately useless).
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut late) => assert!(late.ping().is_err(), "server must not serve after shutdown"),
    }
}
