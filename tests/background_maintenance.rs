//! Background maintenance executor tests: writes proceed while flushes
//! and compactions run on worker threads, FADE deadlines are met without
//! manual `maintain()` calls, the hard write-stall limit engages and
//! releases, and `background_threads = 0` keeps runs deterministic.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use acheron::{Db, DbOptions};
use acheron_vfs::{MemFs, Vfs};

fn opts(background_threads: usize) -> DbOptions {
    DbOptions {
        write_buffer_bytes: 8 << 10,
        level1_target_bytes: 32 << 10,
        target_file_bytes: 16 << 10,
        page_size: 1024,
        max_levels: 4,
        background_threads,
        ..DbOptions::default()
    }
}

/// Writers and readers make progress while workers own every flush and
/// compaction: nothing is lost, reads never regress, and the tree stays
/// structurally sound — with no manual maintenance call anywhere.
#[test]
fn writers_and_readers_race_background_maintenance() {
    let db = Db::open(Arc::new(MemFs::new()), "db", opts(2)).unwrap();
    let stop = AtomicBool::new(false);
    const WRITERS: u64 = 4;
    const KEYS_PER_WRITER: u64 = 1200;

    crossbeam::scope(|s| {
        for w in 0..WRITERS {
            let db = db.clone();
            s.spawn(move |_| {
                for round in 0u64..3 {
                    for k in 0..KEYS_PER_WRITER {
                        let key = format!("w{w}-key{k:05}");
                        db.put(key.as_bytes(), format!("{round:020}").as_bytes())
                            .unwrap();
                    }
                }
            });
        }
        for t in 0..2u64 {
            let db = db.clone();
            let stop = &stop;
            s.spawn(move |_| {
                let mut last_seen: Vec<u64> = vec![0; KEYS_PER_WRITER as usize];
                let mut k = t;
                while !stop.load(Ordering::Acquire) {
                    k = (k + 37) % KEYS_PER_WRITER;
                    let key = format!("w{t}-key{k:05}");
                    if let Some(v) = db.get(key.as_bytes()).unwrap() {
                        let round: u64 = std::str::from_utf8(&v)
                            .unwrap()
                            .trim_start_matches('0')
                            .parse()
                            .unwrap_or(0);
                        assert!(
                            round >= last_seen[k as usize],
                            "value regressed for {key}: {round} < {}",
                            last_seen[k as usize]
                        );
                        last_seen[k as usize] = round;
                    }
                }
            });
        }
        // Writers finish first; then release the readers.
        s.spawn(|_| {}).join().unwrap();
        stop.store(true, Ordering::Release);
    })
    .unwrap();

    db.wait_idle().unwrap();
    use std::sync::atomic::Ordering::Relaxed;
    assert!(
        db.stats().flushes.load(Relaxed) > 0,
        "background workers should have flushed"
    );
    assert!(
        db.stats().compactions.load(Relaxed) > 0,
        "background workers should have compacted"
    );
    // No lost writes: every key holds its final round.
    for w in 0..WRITERS {
        for k in (0..KEYS_PER_WRITER).step_by(61) {
            let key = format!("w{w}-key{k:05}");
            let v = db
                .get(key.as_bytes())
                .unwrap()
                .unwrap_or_else(|| panic!("{key} lost"));
            assert_eq!(&v[..], format!("{:020}", 2).as_bytes(), "{key}");
        }
    }
    db.verify_integrity().unwrap();
}

/// Snapshot readers see a frozen view while background maintenance
/// reshapes the tree underneath them.
#[test]
fn snapshots_stay_frozen_under_background_maintenance() {
    let db = Db::open(Arc::new(MemFs::new()), "db", opts(2)).unwrap();
    for k in 0u64..300 {
        db.put(format!("key{k:04}").as_bytes(), b"epoch-one")
            .unwrap();
    }
    let snap = db.snapshot();
    for round in 0..20u64 {
        for k in 0u64..300 {
            db.put(
                format!("key{k:04}").as_bytes(),
                format!("epoch-{round}").as_bytes(),
            )
            .unwrap();
        }
    }
    db.wait_idle().unwrap();
    for k in (0u64..300).step_by(7) {
        let v = db.get_at(&snap, format!("key{k:04}").as_bytes()).unwrap();
        assert_eq!(v.as_deref(), Some(&b"epoch-one"[..]));
    }
}

/// FADE's persistence bound holds with zero manual `maintain()` calls:
/// TTL-driven compactions are scheduled by the workers themselves.
/// `wait_idle` only blocks — it never runs maintenance inline in
/// background mode.
#[test]
fn fade_deadline_met_without_manual_maintain() {
    let d_th = 200_000u64;
    let db = Db::open(Arc::new(MemFs::new()), "db", opts(1).with_fade(d_th)).unwrap();
    for i in 0..600u32 {
        db.put(format!("key{i:04}").as_bytes(), &[b'v'; 32])
            .unwrap();
    }
    for i in 0..300u32 {
        db.delete(format!("key{i:04}").as_bytes()).unwrap();
    }
    // Age the tombstones well past every station budget, in steps small
    // enough that FADE's built-in trigger-latency margin (D_th/16)
    // absorbs the step size — mirroring how a wall-clock deployment
    // advances continuously.
    let step = d_th / 20;
    for _ in 0..70 {
        db.advance_clock(step);
        db.wait_idle().unwrap();
    }
    use std::sync::atomic::Ordering::Relaxed;
    assert_eq!(
        db.stats().persistence_violations.load(Relaxed),
        0,
        "background FADE must never violate the threshold"
    );
    assert_eq!(
        db.live_tombstones(),
        0,
        "every expired tombstone must be purged"
    );
    assert!(
        db.stats().ttl_compactions.load(Relaxed) > 0,
        "purges must come from the TTL trigger, not luck"
    );
    db.verify_integrity().unwrap();
}

/// With the sealed-memtable queue at its hard limit and maintenance
/// paused, writes block; when maintenance resumes they complete, and
/// nothing is lost.
#[test]
fn writes_stall_at_hard_limit_and_resume() {
    let db = Db::open(
        Arc::new(MemFs::new()),
        "db",
        DbOptions {
            write_buffer_bytes: 4 << 10,
            max_imm_memtables: 1,
            ..opts(1)
        },
    )
    .unwrap();
    let pause = db.pause_maintenance();

    crossbeam::scope(|s| {
        let writer_db = db.clone();
        s.spawn(move |_| {
            // ~40 KiB through a 4 KiB buffer with flushes paused: the
            // sealed queue fills and the writer must stall.
            for k in 0u64..400 {
                writer_db
                    .put(format!("key{k:05}").as_bytes(), &[b'v'; 64])
                    .unwrap();
            }
        });

        use std::sync::atomic::Ordering::Relaxed;
        let deadline = Instant::now() + Duration::from_secs(10);
        while db.stats().write_stalls.load(Relaxed) == 0 {
            assert!(
                Instant::now() < deadline,
                "writer never hit the stall limit"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        // Resume maintenance; the stalled writer must now finish.
        drop(pause);
    })
    .unwrap();

    db.wait_idle().unwrap();
    use std::sync::atomic::Ordering::Relaxed;
    assert!(db.stats().write_stalls.load(Relaxed) >= 1);
    assert!(db.stats().stall_micros.count() >= 1);
    for k in (0u64..400).step_by(17) {
        assert!(
            db.get(format!("key{k:05}").as_bytes()).unwrap().is_some(),
            "key{k:05} lost across the stall"
        );
    }
    db.verify_integrity().unwrap();
}

/// Count live OS threads of this process whose name marks them as
/// Acheron maintenance workers ("acheron-maint-N").
fn maintenance_thread_count() -> usize {
    let Ok(tasks) = std::fs::read_dir("/proc/self/task") else {
        // Not on Linux procfs: fall back to "unknown", which the caller
        // treats as zero (the join-handle drop path is still exercised).
        return 0;
    };
    tasks
        .flatten()
        .filter(|t| {
            std::fs::read_to_string(t.path().join("comm"))
                .map(|c| c.trim().starts_with("acheron-maint"))
                .unwrap_or(false)
        })
        .count()
}

/// Dropping the last `Db` handle joins every background worker and
/// leaves a clean directory: no leaked "acheron-maint" threads, no
/// stray temporary files, and an image `doctor` signs off on.
#[test]
fn drop_joins_workers_and_leaves_no_residue() {
    let fs = Arc::new(MemFs::new());
    {
        let db = Db::open(fs.clone(), "db", opts(3)).unwrap();
        // A spawned thread publishes its kernel comm name itself, a few
        // instructions into its life — poll rather than assert on the
        // instant `open` returns.
        if cfg!(target_os = "linux") {
            let deadline = Instant::now() + Duration::from_secs(10);
            while maintenance_thread_count() < 3 {
                assert!(
                    Instant::now() < deadline,
                    "workers should be running while the Db is open"
                );
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        // Enough churn that flushes and compactions are genuinely in
        // flight when the handle drops.
        for k in 0u64..4000 {
            db.put(format!("key{k:05}").as_bytes(), &[b'v'; 64])
                .unwrap();
            if k % 3 == 0 {
                db.delete(format!("key{:05}", k / 2).as_bytes()).unwrap();
            }
        }
        // Drop without wait_idle: shutdown itself must do the joining.
    }
    // Drop blocks until workers are joined, but the OS may need a beat
    // to reap the task entries; poll with a deadline.
    let deadline = Instant::now() + Duration::from_secs(10);
    while maintenance_thread_count() > 0 {
        assert!(
            Instant::now() < deadline,
            "leaked {} maintenance thread(s) after Db drop",
            maintenance_thread_count()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let names = fs.list("db").unwrap();
    assert!(
        !names.iter().any(|n| n.ends_with(".tmp")),
        "temporary files leaked across shutdown: {names:?}"
    );
    let report = acheron::check_db(fs.as_ref(), "db").unwrap();
    assert!(
        report.warnings.iter().all(|w| w.contains("obsolete WAL")),
        "shutdown image should be doctor-clean: {:?}",
        report.warnings
    );
    // And the image is reopenable with nothing lost.
    let db = Db::open(fs, "db", opts(0)).unwrap();
    assert!(db.get(b"key03999").unwrap().is_some());
    db.verify_integrity().unwrap();
}

/// `background_threads = 0` is the deterministic mode: the same op
/// sequence always produces the same tree and the same read results.
#[test]
fn synchronous_mode_is_deterministic() {
    let run = || {
        let db = Db::open(Arc::new(MemFs::new()), "db", opts(0)).unwrap();
        for round in 0..4u64 {
            for k in 0u64..800 {
                db.put(
                    format!("key{k:05}").as_bytes(),
                    format!("r{round}-{k}").as_bytes(),
                )
                .unwrap();
                if k % 5 == 0 {
                    db.delete(format!("key{:05}", (k + 13) % 800).as_bytes())
                        .unwrap();
                }
            }
        }
        let rows: Vec<(Vec<u8>, Vec<u8>)> = db
            .scan(b"key00000", b"key99999")
            .unwrap()
            .into_iter()
            .map(|(k, v)| (k.to_vec(), v.to_vec()))
            .collect();
        let shape: Vec<(usize, usize, u64)> = db
            .level_summary()
            .into_iter()
            .map(|l| (l.files, l.runs, l.entries))
            .collect();
        (rows, shape, db.table_bytes())
    };
    let a = run();
    let b = run();
    assert_eq!(a.1, b.1, "tree shape must be identical run to run");
    assert_eq!(a.2, b.2, "table bytes must be identical run to run");
    assert_eq!(a.0, b.0, "read results must be identical run to run");
}
