//! Unified memory budget: end-to-end tests of the adaptive arbiter,
//! the fleet-shared block cache, and the cache's concurrent accounting
//! invariants.
//!
//! What is proven here, beyond the unit tests in `acheron::memory` and
//! `acheron_sstable::cache`:
//!
//! 1. a sharded fleet draws on ONE cache instance sized by ONE budget —
//!    the regression that previously allocated `block_cache_bytes` per
//!    shard (N× the intended footprint) stays fixed;
//! 2. enabling the budget never changes any answer: the same op stream
//!    reads and scans identically with the budget (and its cache) on
//!    and off;
//! 3. the cache keeps its capacity and byte accounting exact while many
//!    threads race gets, inserts, and resizes;
//! 4. the adaptive split actually moves under one-sided read pressure
//!    on a real engine, not just in tuner unit tests.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use acheron::{Db, DbOptions, ShardedDb};
use acheron_sstable::{Block, BlockBuilder, BlockCache, PageKey};
use acheron_types::{InternalKey, ValueKind};
use acheron_vfs::{MemFs, Vfs};
use bytes::Bytes;

const KIB: usize = 1 << 10;

fn key(i: u32) -> Vec<u8> {
    format!("key{i:08}").into_bytes()
}

fn value(i: u32) -> Vec<u8> {
    format!("value-{i:08}-{}", "x".repeat(100)).into_bytes()
}

/// A deterministic mixed workload: puts over a rolling keyspace with
/// periodic deletes and overwrites, flushed every `flush_every` ops.
fn drive_workload(db: &Db, ops: u32, flush_every: u32) {
    for i in 0..ops {
        let k = i % 500;
        if i % 7 == 3 {
            db.delete(&key(k)).unwrap();
        } else {
            db.put(&key(k), &value(i)).unwrap();
        }
        if i % flush_every == flush_every - 1 {
            db.flush().unwrap();
        }
    }
    db.maintain().unwrap();
}

#[test]
fn sharded_fleet_shares_one_cache_within_one_budget() {
    const BUDGET: usize = 1 << 20;
    const SHARDS: usize = 16;
    let fs = Arc::new(MemFs::new());
    let opts = DbOptions::small().with_memory_budget(BUDGET);
    let db = ShardedDb::open(fs as Arc<dyn Vfs>, "db", opts, SHARDS).unwrap();

    for i in 0..2000u32 {
        db.put(&key(i), &value(i)).unwrap();
    }
    db.flush().unwrap();
    // Two read passes: the first fills the shared cache from every
    // shard's tables, the second hits it.
    for _ in 0..2 {
        for i in 0..2000u32 {
            assert!(db.get(&key(i)).unwrap().is_some());
        }
    }

    let cache = db.block_cache().expect("budget implies a cache");
    let budget = db.memory_budget().expect("budget configured");
    assert_eq!(budget.total_bytes(), BUDGET);
    // The single shared instance respects the single budget: its
    // capacity is the budget's cache share (well under the total), and
    // its contents fit its capacity. Before the fix, 16 shards held 16
    // private caches — 16× the configured bytes.
    assert!(cache.capacity_bytes() <= BUDGET);
    assert!(
        cache.used_bytes() <= cache.capacity_bytes(),
        "cached bytes {} exceed capacity {}",
        cache.used_bytes(),
        cache.capacity_bytes()
    );
    assert!(cache.used_bytes() > 0, "reads populated the shared cache");
    assert!(cache.hits() > 0, "second pass hit the shared cache");

    // Shared-scope stats appear exactly once: every per-shard snapshot
    // leaves them zero, the fleet snapshot fills them from the single
    // instance. Summing shards can therefore never overcount.
    for s in db.shard_stats() {
        assert_eq!(s.cache_hits, 0);
        assert_eq!(s.cache_capacity_bytes, 0);
        assert_eq!(s.memory_budget_bytes, 0);
        assert!(s.memtable_budget_bytes > 0, "per-shard allowance is real");
    }
    let fleet = db.stats_snapshot();
    assert_eq!(fleet.cache_hits, cache.hits());
    assert_eq!(fleet.cache_capacity_bytes, cache.capacity_bytes() as u64);
    assert_eq!(fleet.memory_budget_bytes, BUDGET as u64);
}

#[test]
fn budget_on_and_off_read_and_scan_identically() {
    let run = |opts: DbOptions| {
        let db = Db::open(Arc::new(MemFs::new()) as Arc<dyn Vfs>, "db", opts).unwrap();
        drive_workload(&db, 3000, 97);
        let mut gets = Vec::new();
        for i in 0..500u32 {
            gets.push(db.get(&key(i)).unwrap().map(|v| v.to_vec()));
        }
        let scan: Vec<(Vec<u8>, Vec<u8>)> = db
            .scan(b"", b"\xff")
            .unwrap()
            .into_iter()
            .map(|(k, v)| (k.to_vec(), v.to_vec()))
            .collect();
        (gets, scan)
    };
    let plain = run(DbOptions::small().with_fade(10_000));
    let budgeted = run(DbOptions::small()
        .with_fade(10_000)
        .with_memory_budget(512 * KIB));
    assert_eq!(plain.0, budgeted.0, "point reads must be budget-oblivious");
    assert_eq!(plain.1, budgeted.1, "scans must be budget-oblivious");
}

#[test]
fn legacy_sizing_is_untouched_when_budget_is_disabled() {
    let db = Db::open(
        Arc::new(MemFs::new()) as Arc<dyn Vfs>,
        "db",
        DbOptions::small(),
    )
    .unwrap();
    let s = db.stats_snapshot();
    // Exactly the static knobs: seal threshold is write_buffer_bytes,
    // no budget, no cache (small() leaves block_cache_bytes at 0).
    assert_eq!(s.memtable_budget_bytes, 16 << 10);
    assert_eq!(s.memory_budget_bytes, 0);
    assert_eq!(s.cache_capacity_bytes, 0);
    assert!(db.memory_budget().is_none());
    assert!(db.cache_stats().is_none());
}

#[test]
fn budget_derives_both_shares_and_creates_a_cache() {
    const BUDGET: usize = 512 * KIB;
    let db = Db::open(
        Arc::new(MemFs::new()) as Arc<dyn Vfs>,
        "db",
        DbOptions::small().with_memory_budget(BUDGET),
    )
    .unwrap();
    let s = db.stats_snapshot();
    assert_eq!(s.memory_budget_bytes, BUDGET as u64);
    // The initial split is even, so each share is about half the pool.
    assert!(s.memtable_budget_bytes > 0);
    assert!(s.memtable_budget_bytes <= (BUDGET as u64) * 6 / 10);
    assert!(
        s.cache_capacity_bytes > 0,
        "a budget creates a cache even with block_cache_bytes = 0"
    );
    assert!(s.memtable_budget_bytes + s.cache_capacity_bytes <= BUDGET as u64);
    assert!(db.cache_stats().is_some());
}

#[test]
fn adaptive_split_grows_the_cache_under_read_pressure() {
    const BUDGET: usize = 256 * KIB;
    let db = Db::open(
        Arc::new(MemFs::new()) as Arc<dyn Vfs>,
        "db",
        DbOptions::small().with_memory_budget(BUDGET),
    )
    .unwrap();
    // Build a table footprint larger than the cache share, then stop
    // writing entirely.
    for i in 0..3000u32 {
        db.put(&key(i % 1500), &value(i)).unwrap();
    }
    db.flush().unwrap();
    let budget = db.memory_budget().unwrap();
    let cache_before = budget.cache_share_bytes();

    // Read-only phase: every maintain() is one tuner window. Misses
    // fill the cache (fill demand) while flush traffic is zero, so the
    // tuner must lean toward the cache and, after the two-window
    // hysteresis, move the split.
    for round in 0..12u32 {
        for i in 0..1500u32 {
            db.get(&key((i * 31 + round * 7) % 1500)).unwrap();
        }
        db.maintain().unwrap();
    }
    assert!(
        budget.adjustments() >= 1,
        "read-only pressure never moved the split"
    );
    assert!(
        budget.cache_share_bytes() > cache_before,
        "cache share should grow under read pressure: {} -> {}",
        cache_before,
        budget.cache_share_bytes()
    );
    // The live cache instance tracked the share.
    let s = db.stats_snapshot();
    assert_eq!(s.cache_capacity_bytes, budget.cache_share_bytes() as u64);
}

fn test_block(tag: u32) -> (Block, usize) {
    let mut b = BlockBuilder::new(4);
    let ik = InternalKey::new(&tag.to_be_bytes(), 1, ValueKind::Put);
    b.add(ik.encoded(), 0, &[tag as u8; 128]);
    let raw = b.finish();
    let size = raw.len();
    (Block::new(Bytes::from(raw)).unwrap(), size)
}

#[test]
fn concurrent_gets_inserts_and_resizes_keep_accounting_exact() {
    const THREADS: usize = 16;
    const OPS_PER_THREAD: u32 = 2000;
    let cache = Arc::new(BlockCache::new(256 * KIB));
    let inserted = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let cache = &cache;
            let inserted = &inserted;
            s.spawn(move || {
                for i in 0..OPS_PER_THREAD {
                    let id = (t as u64) << 32 | u64::from(i % 97);
                    let k = PageKey {
                        table: id % 13,
                        offset: (id % 211) * 64,
                    };
                    if i % 3 == 0 {
                        let (b, size) = test_block(i);
                        cache.insert(k, b, size);
                        inserted.fetch_add(1, Ordering::Relaxed);
                    } else {
                        // A hit must return a well-formed block.
                        if let Some(b) = cache.get(&k) {
                            let mut it = b.iter();
                            it.seek_to_first().unwrap();
                            assert!(it.valid());
                        }
                    }
                    // Mid-flight bound: a racing resize means the
                    // global capacity gauge and the per-shard contents
                    // disagree transiently, but no interleaving may
                    // ever hold more than the largest capacity that
                    // was configured (each shard evicts to its target
                    // under its own lock before admitting bytes).
                    if i % 251 == 0 {
                        assert!(cache.used_bytes() <= 256 * KIB);
                    }
                }
            });
        }
        // One thread races shrinks and grows against the workers.
        s.spawn(|| {
            for i in 0..200u32 {
                let cap = if i % 2 == 0 { 32 * KIB } else { 256 * KIB };
                cache.resize(cap);
            }
        });
    });

    // Quiesce at a known capacity and check the books.
    cache.resize(64 * KIB);
    assert!(cache.used_bytes() <= 64 * KIB);
    assert_eq!(cache.capacity_bytes(), 64 * KIB);
    assert!(cache.inserted_bytes() > 0);
    assert!(
        cache.evicted_bytes() <= cache.inserted_bytes(),
        "cannot evict more bytes than were ever inserted"
    );
    let per_thread = (OPS_PER_THREAD as usize).div_ceil(3);
    assert_eq!(inserted.load(Ordering::Relaxed), THREADS * per_thread);
}
