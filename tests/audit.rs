//! Delete-lifecycle audit tests: the cohort ledger, the compliance
//! report behind `acheron audit`, and its fleet aggregation.
//!
//! * an aged, delete-heavy workload (40% deletes, forced maintenance)
//!   resolves every tombstone cohort within `D_th` — the audit passes
//!   and maps to exit code 0;
//! * an injected overdue cohort fails the audit, naming the offending
//!   shard and epoch, and maps to a nonzero exit;
//! * a four-shard fleet's audit is the union of the per-shard ledgers
//!   judged against the shared clock;
//! * the audit round-trips the wire (`acheron audit <host:port>`)
//!   carrying the violation verdict out-of-band of the text.

use std::sync::Arc;

use acheron::{Db, DbOptions, DeleteAudit, DeleteLedger, ShardedDb};
use acheron_server::{Client, Server, ServerOptions};
use acheron_vfs::MemFs;

fn small() -> DbOptions {
    DbOptions::small()
}

/// Age a database the way the acceptance scenario prescribes: a
/// delete-heavy mix (40% of written keys deleted), then the clock
/// driven well past `D_th` with unrelated writes and maintenance
/// forced so FADE purges everything due.
fn age(db: &Db, d_th: u64) {
    for i in 0..800u32 {
        db.put(format!("key{i:04}").as_bytes(), &[b'v'; 32])
            .unwrap();
    }
    for i in 0..320u32 {
        db.delete(format!("key{i:04}").as_bytes()).unwrap();
    }
    for i in 0..(3 * d_th as u32) {
        db.put(format!("other{i:05}").as_bytes(), &[b'w'; 32])
            .unwrap();
    }
    db.maintain().unwrap();
    db.wait_idle().unwrap();
}

// ---------------------------------------------------------------------
// Acceptance: aged workload passes, injected violation fails
// ---------------------------------------------------------------------

/// Every cohort of the aged workload resolves within `D_th`: the audit
/// passes, renders `status: OK`, and maps to exit code 0.
#[test]
fn aged_workload_resolves_every_cohort_within_d_th() {
    let d_th = 2_000u64;
    let db = Db::open(Arc::new(MemFs::new()), "db", small().with_fade(d_th)).unwrap();
    age(&db, d_th);

    let audit = db.delete_audit();
    assert_eq!(audit.d_th, Some(d_th));
    assert!(
        !audit.cohorts.is_empty(),
        "a delete-heavy run must leave cohort records"
    );
    for c in &audit.cohorts {
        assert!(
            c.is_resolved(),
            "cohort shard={} epoch={} still unresolved after forced maintenance:\n{}",
            c.shard,
            c.epoch,
            c.render(audit.now, audit.d_th)
        );
        assert!(
            c.age(audit.now) <= d_th,
            "cohort shard={} epoch={} resolved too late: age {} > D_th {}",
            c.shard,
            c.epoch,
            c.age(audit.now),
            d_th
        );
    }
    assert!(audit.ok(), "audit must pass:\n{}", audit.render());
    let text = audit.render();
    assert!(
        text.contains("status: OK"),
        "render must conclude OK:\n{text}"
    );
    assert!(text.contains(&format!("D_th = {d_th}")));
    // The CLI exit code is derived exactly this way.
    assert_eq!(i32::from(!audit.ok()), 0);
}

/// An overdue cohort injected into the ledger fails the audit; the
/// report names the offending shard and epoch, and the exit mapping is
/// nonzero.
#[test]
fn injected_overdue_cohort_fails_audit_naming_the_cohort() {
    let mut ledger = DeleteLedger::new(3);
    ledger.note_deletes(12, 2, 100);
    ledger.seal(1, 99, 150);
    ledger.flushed(160);

    let audit = DeleteAudit {
        now: 10_000,
        d_th: Some(500),
        cohorts: ledger.snapshot(),
        oldest_live_tombstone_tick: Some(100),
        oldest_vlog_dead_tick: None,
    };
    assert!(!audit.ok());
    let violators = audit.violating_cohorts();
    assert_eq!(violators.len(), 1);
    assert_eq!((violators[0].shard, violators[0].epoch), (3, 0));

    let text = audit.render();
    assert!(
        text.contains("status: VIOLATION — cohort shard=3 epoch=0"),
        "violation must name the cohort:\n{text}"
    );
    assert!(text.contains("VIOLATION (> D_th 500)"), "{text}");
    assert_eq!(
        i32::from(!audit.ok()),
        1,
        "violation must map to a nonzero exit"
    );
}

/// Without a configured threshold the audit is a report, never a
/// judgment: the same overdue cohort passes.
#[test]
fn audit_without_threshold_always_passes() {
    let mut ledger = DeleteLedger::new(0);
    ledger.note_deletes(1, 0, 5);
    let audit = DeleteAudit {
        now: 1_000_000,
        d_th: None,
        cohorts: ledger.snapshot(),
        oldest_live_tombstone_tick: Some(5),
        oldest_vlog_dead_tick: None,
    };
    assert!(audit.ok());
    assert!(audit.violating_cohorts().is_empty());
    assert!(audit.render().contains("(no D_th set)"));
}

/// A gauge-level breach (state predating the process, no cohort
/// tracked) still fails the audit.
#[test]
fn gauge_only_breach_fails_audit() {
    let audit = DeleteAudit {
        now: 10_000,
        d_th: Some(100),
        cohorts: Vec::new(),
        oldest_live_tombstone_tick: Some(1),
        oldest_vlog_dead_tick: None,
    };
    assert!(!audit.ok());
    assert!(
        audit
            .render()
            .contains("status: VIOLATION — unresolved delete age"),
        "{}",
        audit.render()
    );
}

// ---------------------------------------------------------------------
// Fleet aggregation (satellite d)
// ---------------------------------------------------------------------

/// The four-shard fleet audit is exactly the union of the per-shard
/// ledgers: same cohorts, shard-tagged, ordered by (shard, epoch),
/// judged against the shared clock.
#[test]
fn fleet_audit_is_union_of_per_shard_ledgers() {
    let d_th = 2_000u64;
    let db = ShardedDb::open(Arc::new(MemFs::new()), "db", small().with_fade(d_th), 4).unwrap();
    for i in 0..1200u32 {
        db.put(format!("key{i:04}").as_bytes(), &[b'v'; 32])
            .unwrap();
        if i % 5 < 2 {
            db.delete(format!("key{i:04}").as_bytes()).unwrap();
        }
    }
    for i in 0..(3 * d_th as u32) {
        db.put(format!("other{i:05}").as_bytes(), &[b'w'; 32])
            .unwrap();
    }
    db.maintain().unwrap();
    db.wait_idle().unwrap();

    let fleet = db.delete_audit();
    assert_eq!(fleet.d_th, Some(d_th));

    // Union: the fleet report holds exactly each shard's own cohorts.
    let mut expected = Vec::new();
    for i in 0..4 {
        let shard = db.shard(i).delete_audit();
        for c in &shard.cohorts {
            assert_eq!(c.shard, i, "shard ledger must tag its own index");
        }
        expected.extend(shard.cohorts);
    }
    expected.sort_by_key(|c| (c.shard, c.epoch));
    assert_eq!(fleet.cohorts, expected);

    // Hash partitioning spread the deletes: more than one shard
    // contributed cohorts.
    let shards_seen: std::collections::BTreeSet<usize> =
        fleet.cohorts.iter().map(|c| c.shard).collect();
    assert!(
        shards_seen.len() > 1,
        "expected cohorts from multiple shards, got {shards_seen:?}"
    );

    assert!(fleet.ok(), "fleet audit must pass:\n{}", fleet.render());
    assert!(fleet.render().contains("status: OK"));
}

// ---------------------------------------------------------------------
// Wire round trip
// ---------------------------------------------------------------------

/// `acheron audit <host:port>` semantics: the verdict travels as a
/// flag beside the text, and a healthy server reports no violation.
#[test]
fn audit_round_trips_the_wire() {
    let d_th = 2_000u64;
    let db = Arc::new(Db::open(Arc::new(MemFs::new()), "db", small().with_fade(d_th)).unwrap());
    age(&db, d_th);
    let mut server =
        Server::start(Arc::clone(&db), "127.0.0.1:0", ServerOptions::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let (violation, text) = client.audit().unwrap();
    assert!(
        !violation,
        "healthy server must not report a violation:\n{text}"
    );
    assert_eq!(text, db.delete_audit().render());
    assert!(text.contains("status: OK"));
    assert!(text.contains(&format!("D_th = {d_th}")));
    server.shutdown();
}
