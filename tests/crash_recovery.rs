//! Deterministic crash-recovery campaign over the fault-injecting VFS.
//!
//! The harness (in `acheron::testutil`) drives a seeded put/delete
//! workload on a `FaultVfs`, cuts power at chosen durability points
//! (syncs and renames — the only instants at which on-disk state
//! changes meaning), reboots on the surviving bytes, reopens, and
//! checks four invariants at every point:
//!
//! 1. every acknowledged (WAL-synced) write is readable after recovery;
//! 2. no acknowledged delete is resurrected;
//! 3. the crashed image and the recovered image are `doctor`-clean
//!    (errors never; post-recovery, no warnings either);
//! 4. FADE's delete-persistence bound still holds after recovery.
//!
//! Together the tests below sweep well over 50 crash points across
//! synchronous (`background_threads = 0`) and background modes and both
//! power-cut models (unsynced suffix dropped wholesale, or torn to a
//! random length the way physical sectors tear).

use acheron::testutil::{
    count_crash_points, demonstrate_delete_before_manifest, run_crash_suite,
    run_recovery_crash_point, CrashConfig, CrashWorkload,
};
use acheron_vfs::CutDurability;
use proptest::prelude::*;

fn sync_cfg() -> CrashConfig {
    CrashConfig {
        background_threads: 0,
        ..CrashConfig::default()
    }
}

/// Synchronous mode: the durability-point space is exactly enumerable.
/// Sweep it with a stride, checking ≥ 30 crash points end to end.
#[test]
fn sync_mode_survives_crashes_at_swept_durability_points() {
    let cfg = sync_cfg();
    let total = count_crash_points(&cfg);
    assert!(
        total >= 60,
        "workload too small to be interesting: only {total} durability points"
    );
    // Stride chosen to sweep ≥ 30 points spread across the whole run.
    let stride = (total / 30).max(1);
    let report = run_crash_suite(&cfg, (0..total).step_by(stride as usize));
    assert!(
        report.violations().is_empty(),
        "crash-recovery invariant violations:\n{}",
        report.violations().join("\n")
    );
    assert!(
        report.crashes() >= 30,
        "expected >= 30 actual crashes, got {} of {} points",
        report.crashes(),
        report.outcomes.len()
    );
}

/// Same sweep under the torn-tail power-cut model: unsynced suffixes
/// survive to a seeded-random length, exercising WAL/manifest torn-tail
/// recovery at every point.
#[test]
fn sync_mode_survives_torn_tail_crashes() {
    let cfg = CrashConfig {
        cut: CutDurability::TornTail,
        workload: CrashWorkload {
            seed: 0xBEEF_0002,
            ..CrashWorkload::default()
        },
        ..sync_cfg()
    };
    let total = count_crash_points(&cfg);
    let stride = (total / 15).max(1);
    let report = run_crash_suite(&cfg, (0..total).step_by(stride as usize));
    assert!(
        report.violations().is_empty(),
        "torn-tail crash violations:\n{}",
        report.violations().join("\n")
    );
    assert!(report.crashes() >= 15);
}

/// Range-delete-heavy workload under both power-cut models: a cut
/// between a sort-key range tombstone's WAL append and the flush that
/// persists it into a table's stats block must never resurrect keys the
/// acked range delete erased — and recovery must rebuild the memtable's
/// tombstone buffer from the WAL alone.
#[test]
fn range_tombstones_survive_crashes_under_both_cut_models() {
    for (cut, seed) in [
        (CutDurability::DropUnsynced, 0xCAFE_0011u64),
        (CutDurability::TornTail, 0xCAFE_0012u64),
    ] {
        let cfg = CrashConfig {
            cut,
            workload: CrashWorkload {
                seed,
                ops: 250,
                key_space: 48,
                delete_percent: 15,
                range_delete_percent: 20,
                large_value_percent: 15,
            },
            ..sync_cfg()
        };
        let ops = cfg.workload.generate();
        let range_ops = ops
            .iter()
            .filter(|op| matches!(op, acheron::testutil::WorkloadOp::RangeDeleteKeys { .. }))
            .count();
        assert!(
            range_ops >= 30,
            "workload too light on range deletes: {range_ops}"
        );
        let total = count_crash_points(&cfg);
        let stride = (total / 15).max(1);
        let report = run_crash_suite(&cfg, (0..total).step_by(stride as usize));
        assert!(
            report.violations().is_empty(),
            "range-delete crash violations ({cut:?}):\n{}",
            report.violations().join("\n")
        );
        assert!(report.crashes() >= 12);
    }
}

/// Value-log-heavy workload under both power-cut models: most puts
/// exceed the separation threshold, so crash points land between vlog
/// appends, vlog syncs and the WAL syncs that acknowledge them. The
/// harness invariants then say exactly what the value log must
/// guarantee: every acked separated value reads back byte-exact (a
/// pointer whose frame was lost would fail the stamp check), the
/// recovered image is doctor-clean (no dangling pointers, no orphan
/// `.vlg` tails or heal temp files survive recovery), and the FADE
/// bound still covers dead vlog extents.
#[test]
fn separated_values_survive_crashes_under_both_cut_models() {
    for (cut, seed) in [
        (CutDurability::DropUnsynced, 0xB10B_0021u64),
        (CutDurability::TornTail, 0xB10B_0022u64),
    ] {
        let cfg = CrashConfig {
            cut,
            workload: CrashWorkload {
                seed,
                ops: 250,
                key_space: 64,
                delete_percent: 20,
                range_delete_percent: 8,
                large_value_percent: 60,
            },
            ..sync_cfg()
        };
        let ops = cfg.workload.generate();
        let large_ops = ops
            .iter()
            .filter(|op| matches!(op, acheron::testutil::WorkloadOp::Put { large: true, .. }))
            .count();
        assert!(
            large_ops >= 50,
            "workload too light on separated values: {large_ops}"
        );
        let total = count_crash_points(&cfg);
        let stride = (total / 15).max(1);
        let report = run_crash_suite(&cfg, (0..total).step_by(stride as usize));
        assert!(
            report.violations().is_empty(),
            "vlog crash violations ({cut:?}):\n{}",
            report.violations().join("\n")
        );
        assert!(report.crashes() >= 12);
    }
}

/// The whole sync-mode sweep again with the unified memory budget (and
/// therefore the block cache and adaptive arbiter) live. The cache is
/// purely in-memory state, so every recovery invariant must hold
/// unchanged: a crash point whose answers differ from the cache-off
/// sweep would mean cached blocks leaked into recovered state.
#[test]
fn crashes_with_memory_budget_and_cache_recover_identically() {
    let cfg = CrashConfig {
        // Big enough that the cache share actually caches table pages;
        // the memtable share (~half) still seals several times over the
        // workload, so flush/compaction crash points stay covered.
        memory_budget_bytes: 256 << 10,
        workload: CrashWorkload {
            seed: 0xCAC4_0031,
            ..CrashWorkload::default()
        },
        ..sync_cfg()
    };
    let total = count_crash_points(&cfg);
    let stride = (total / 15).max(1);
    let report = run_crash_suite(&cfg, (0..total).step_by(stride as usize));
    assert!(
        report.violations().is_empty(),
        "cache-enabled crash violations:\n{}",
        report.violations().join("\n")
    );
    assert!(report.crashes() >= 12);
}

/// Background mode: crash points land wherever worker timing puts the
/// n-th sync — every landing is still a valid crash and every invariant
/// still has to hold.
#[test]
fn background_mode_survives_crashes_at_sampled_points() {
    let cfg = CrashConfig {
        background_threads: 2,
        workload: CrashWorkload {
            seed: 0xD00D_0003,
            ..CrashWorkload::default()
        },
        ..CrashConfig::default()
    };
    let total = count_crash_points(&cfg);
    assert!(total > 0, "background run produced no durability points");
    // Sample 12 points across the observed range; some may land beyond
    // this run's actual point count (timing), which the harness treats
    // as a crash-free run and checks anyway.
    let stride = (total / 12).max(1);
    let report = run_crash_suite(&cfg, (0..total).step_by(stride as usize));
    assert!(
        report.violations().is_empty(),
        "background crash violations:\n{}",
        report.violations().join("\n")
    );
    assert!(
        report.crashes() >= 6,
        "background sweep should hit real crashes, got {}",
        report.crashes()
    );
}

/// Crash *during recovery*: cut power in the workload, reboot, then cut
/// power again at each of the first durability points of the recovery
/// itself — the double-fault schedule that catches repair paths which
/// fix the image in a non-crash-safe order (healing a WAL tear before
/// the segments it invalidates are gone, collecting a superseded
/// manifest before the CURRENT repoint is durable). Run under both
/// power-cut models; the torn-tail model additionally tears the heal's
/// own temp file mid-write.
#[test]
fn recovery_itself_survives_crashes_at_swept_points() {
    for cut in [CutDurability::DropUnsynced, CutDurability::TornTail] {
        let cfg = CrashConfig {
            cut,
            workload: CrashWorkload {
                seed: 0xFEED_0004,
                ops: 200,
                ..CrashWorkload::default()
            },
            ..sync_cfg()
        };
        let total = count_crash_points(&cfg);
        assert!(total >= 12, "workload too small: {total} durability points");
        let mut violations: Vec<String> = Vec::new();
        let mut recovery_crashes = 0usize;
        // Three workload crash instants (early / mid / late), each
        // followed by a sweep over the recovery's own first points.
        for workload_point in [total / 8, total / 2, total - 2] {
            for recovery_point in 0..6 {
                let outcome = run_recovery_crash_point(&cfg, workload_point, recovery_point);
                recovery_crashes += usize::from(outcome.crashed);
                violations.extend(outcome.violations);
            }
        }
        assert!(
            violations.is_empty(),
            "recovery-crash invariant violations ({cut:?}):\n{}",
            violations.join("\n")
        );
        assert!(
            recovery_crashes >= 6,
            "sweep should cut power inside recovery ({cut:?}): {recovery_crashes} crashes"
        );
    }
}

/// The check itself must have teeth: an engine that physically deleted
/// WAL segments *before* the manifest recorded the flush (the reverse
/// of the manifest-append ≻ publish ≻ delete invariant) loses
/// acknowledged writes — and the harness must say so.
#[test]
fn broken_delete_before_manifest_ordering_is_caught() {
    let violations = demonstrate_delete_before_manifest(&sync_cfg());
    assert!(
        !violations.is_empty(),
        "the harness failed to flag a lost acknowledged write"
    );
    assert!(
        violations.iter().any(|v| v.contains("expected stamp")),
        "expected a lost-write report, got: {violations:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized seeds and crash points on top of the deterministic
    /// sweeps; failures persist to crash_recovery.proptest-regressions
    /// as permanent counterexamples.
    #[test]
    fn random_seed_random_point_recovers(seed in 1u64..1 << 48, frac in 0u64..1000) {
        let cfg = CrashConfig {
            workload: CrashWorkload { seed, ops: 150, ..CrashWorkload::default() },
            ..sync_cfg()
        };
        let total = count_crash_points(&cfg);
        let report = run_crash_suite(&cfg, [frac * total / 1000]);
        prop_assert!(
            report.violations().is_empty(),
            "violations: {:?}",
            report.violations()
        );
    }
}
