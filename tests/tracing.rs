//! Per-op tracing tests: the sampler, the retention buffer, and the
//! wire-level `traced` round trip.
//!
//! * a wire-traced put and get round-trip with the client-chosen trace
//!   id and decompose into at least four named stages each;
//! * the power-of-two sampler captures exactly one in `2^k` ops and is
//!   silent (zero counters, zero retained traces) when disabled;
//! * a sharded fleet draws trace ids from one shared allocator, so ids
//!   are fleet-unique and the sampled-trace counter reflects ops, not
//!   ops multiplied by shard count.

use std::collections::BTreeSet;
use std::sync::Arc;

use acheron::{Db, DbOptions, ShardedDb, TraceOp};
use acheron_server::{Client, Server, ServerOptions};
use acheron_vfs::MemFs;

fn open(o: DbOptions) -> Db {
    Db::open(Arc::new(MemFs::new()), "db", o).unwrap()
}

fn span_names(spans: &[(String, u64)]) -> Vec<&str> {
    spans.iter().map(|(n, _)| n.as_str()).collect()
}

// ---------------------------------------------------------------------
// Wire round trip: the acceptance criterion
// ---------------------------------------------------------------------

/// A traced put and a traced get over the wire must come back with the
/// client-chosen trace id and decompose into >= 4 named stages each.
#[test]
fn wire_traced_put_and_get_decompose_into_named_stages() {
    let db = Arc::new(open(DbOptions::small()));
    let mut server = Server::start(db, "127.0.0.1:0", ServerOptions::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let put = client
        .put_traced(b"traced-key", b"traced-value", 42)
        .unwrap();
    assert_eq!(
        put.trace_id, 42,
        "client-chosen id must survive the round trip"
    );
    assert_eq!(put.op, "put");
    assert!(
        put.spans.len() >= 4,
        "put trace must decompose into >= 4 stages, got {:?}",
        put.spans
    );
    let names = span_names(&put.spans);
    for required in [
        "wal_append_fsync_micros",
        "memtable_insert_micros",
        "total_micros",
    ] {
        assert!(
            names.contains(&required),
            "put trace missing {required}: {names:?}"
        );
    }
    // The admission stage depends on the commit path: synchronous
    // engines report throttle_wait, threaded ones commit_queue_wait.
    assert!(
        names.contains(&"throttle_wait_micros") || names.contains(&"commit_queue_wait_micros"),
        "put trace missing an admission stage: {names:?}"
    );
    assert!(put.value.is_none(), "a put carries no value payload");

    let get = client.get_traced(b"traced-key", 43).unwrap();
    assert_eq!(get.trace_id, 43);
    assert_eq!(get.op, "get");
    assert_eq!(get.value.as_deref(), Some(&b"traced-value"[..]));
    assert!(
        get.spans.len() >= 4,
        "get trace must decompose into >= 4 stages, got {:?}",
        get.spans
    );
    let names = span_names(&get.spans);
    for required in [
        "view_clone_micros",
        "memtable_probe_micros",
        "table_probes",
        "total_micros",
    ] {
        assert!(
            names.contains(&required),
            "get trace missing {required}: {names:?}"
        );
    }

    let del = client.delete_traced(b"traced-key", 44).unwrap();
    assert_eq!(del.trace_id, 44);
    assert_eq!(del.op, "delete");
    assert!(
        del.spans.len() >= 4,
        "delete trace too shallow: {:?}",
        del.spans
    );

    // Every wire-traced op is also retained server-side for `traces`.
    let listing = client.traces().unwrap();
    for needle in ["trace 42 op=put", "trace 43 op=get", "trace 44 op=delete"] {
        assert!(
            listing.contains(needle),
            "traces listing missing {needle:?}:\n{listing}"
        );
    }
    // Stage values in the listing are the rendered span names.
    assert!(listing.contains("total_micros"));
    server.shutdown();
}

/// The `total_micros` stage closes every trace and bounds each timed
/// sub-stage (total is wall time of the whole op).
#[test]
fn total_stage_bounds_timed_substages() {
    let db = open(DbOptions::small());
    let trace = db.put_traced(b"k", b"v", None).unwrap();
    let total = trace
        .spans
        .iter()
        .find_map(|(s, v)| (s.name() == "total_micros").then_some(*v))
        .expect("every trace ends with total_micros");
    for (stage, value) in &trace.spans {
        if stage.name().ends_with("_micros") && stage.name() != "total_micros" {
            assert!(
                *value <= total,
                "stage {} = {value} exceeds total {total}",
                stage.name()
            );
        }
    }
    assert_eq!(trace.op, TraceOp::Put);
}

// ---------------------------------------------------------------------
// Sampler behavior
// ---------------------------------------------------------------------

/// With `trace_sample_every = 1` every op lands in the retention
/// buffer; the stats counter agrees with the retained count.
#[test]
fn sampler_at_one_captures_every_op() {
    let db = open(DbOptions::small().with_trace_sampling(1));
    for i in 0..10u32 {
        db.put(format!("k{i:02}").as_bytes(), b"v").unwrap();
    }
    for i in 0..10u32 {
        db.get(format!("k{i:02}").as_bytes()).unwrap();
    }
    let traces = db.recent_traces();
    assert_eq!(traces.len(), 20, "1-in-1 sampling must capture all 20 ops");
    assert_eq!(db.stats().snapshot().traces_sampled, 20);
    assert_eq!(traces.iter().filter(|t| t.op == TraceOp::Put).count(), 10);
    assert_eq!(traces.iter().filter(|t| t.op == TraceOp::Get).count(), 10);
    for t in &traces {
        assert!(
            t.spans.iter().any(|(s, _)| s.name() == "total_micros"),
            "sampled trace missing total: {t:?}"
        );
    }
}

/// A power-of-two stride samples exactly one in `2^k` on a serial
/// driver.
#[test]
fn sampler_stride_is_exact_on_serial_ops() {
    let db = open(DbOptions::small().with_trace_sampling(4));
    for i in 0..64u32 {
        db.put(format!("k{i:02}").as_bytes(), b"v").unwrap();
    }
    assert_eq!(
        db.stats().snapshot().traces_sampled,
        16,
        "64 ops / 4 = 16 samples"
    );
    assert_eq!(db.recent_traces().len(), 16);
}

/// Sampling off (the default) retains nothing and counts nothing —
/// the zero-overhead configuration E17 measures.
#[test]
fn sampling_off_is_silent() {
    assert_eq!(
        DbOptions::default().trace_sample_every,
        0,
        "tracing must default to off"
    );
    let db = open(DbOptions::small());
    for i in 0..32u32 {
        db.put(format!("k{i:02}").as_bytes(), b"v").unwrap();
        db.get(format!("k{i:02}").as_bytes()).unwrap();
    }
    db.delete(b"k00").unwrap();
    assert!(db.recent_traces().is_empty());
    assert_eq!(db.stats().snapshot().traces_sampled, 0);
}

/// A non-power-of-two stride is a configuration error, not a silent
/// misconfiguration.
#[test]
fn sampler_stride_must_be_power_of_two() {
    let err = match Db::open(
        Arc::new(MemFs::new()),
        "db",
        DbOptions::small().with_trace_sampling(3),
    ) {
        Ok(_) => panic!("stride 3 must be rejected"),
        Err(e) => e,
    };
    assert!(err.to_string().contains("power of two"), "got: {err}");
}

// ---------------------------------------------------------------------
// Fleet scope: shared id allocator, un-multiplied counters
// ---------------------------------------------------------------------

/// All four shards draw trace ids from one shared allocator: ids are
/// unique across the fleet, and the aggregated sampled-trace counter
/// equals the op count (each op is routed to exactly one shard — the
/// counter must not scale with shard count).
#[test]
fn fleet_trace_ids_are_unique_and_counters_unmultiplied() {
    let db = ShardedDb::open(
        Arc::new(MemFs::new()),
        "db",
        DbOptions::small().with_trace_sampling(1),
        4,
    )
    .unwrap();
    let ops = 200u32;
    for i in 0..ops {
        db.put(format!("key{i:04}").as_bytes(), b"v").unwrap();
    }

    let traces = db.recent_traces();
    // Per-shard retention is bounded (64 per shard); with 200 ops over
    // 4 shards no shard overflows, so every op's trace is retained.
    assert_eq!(traces.len(), ops as usize);
    let ids: BTreeSet<u64> = traces.iter().map(|t| t.trace_id).collect();
    assert_eq!(ids.len(), traces.len(), "trace ids must be fleet-unique");

    // Shared-scope counter: 200 ops sampled once each, not once per
    // shard.
    assert_eq!(db.stats_snapshot().traces_sampled, u64::from(ops));
}

/// Explicitly traced ops through the sharded router keep the caller's
/// trace id and route to exactly one shard.
#[test]
fn sharded_traced_ops_propagate_ids() {
    let db = ShardedDb::open(Arc::new(MemFs::new()), "db", DbOptions::small(), 4).unwrap();
    let put = db.put_traced(b"alpha", b"1", Some(7)).unwrap();
    assert_eq!(put.trace_id, 7);
    assert_eq!(put.op, TraceOp::Put);

    let (value, get) = db.get_traced(b"alpha", Some(8)).unwrap();
    assert_eq!(value.as_deref(), Some(&b"1"[..]));
    assert_eq!(get.trace_id, 8);
    assert_eq!(get.op, TraceOp::Get);

    let del = db.delete_traced(b"alpha", Some(9)).unwrap();
    assert_eq!(del.trace_id, 9);
    assert_eq!(del.op, TraceOp::Delete);

    // With sampling off, only the three forced traces are retained —
    // exactly one shard retained each.
    let traces = db.recent_traces();
    assert_eq!(traces.len(), 3);
}
