//! Invariant I2 (visibility): the engine's observable behaviour equals a
//! reference model, under random operation interleavings that include
//! flushes, full compactions, and reopen-from-disk.
//!
//! The model is a `BTreeMap<key, (seqno, dkey, value)>` plus the list of
//! issued range tombstones, replaying the engine's documented semantics
//! (newest visible version decides; range-erased versions fall through).

use std::collections::BTreeMap;
use std::sync::Arc;

use acheron::{Db, DbOptions};
use acheron_vfs::{MemFs, Vfs};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Action {
    Put { key: u8, value: u8 },
    Delete { key: u8 },
    RangeDelete { lo: u64, width: u64 },
    Flush,
    CompactAll,
    Reopen,
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        8 => (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Action::Put { key: k % 24, value: v }),
        3 => any::<u8>().prop_map(|k| Action::Delete { key: k % 24 }),
        1 => (0u64..200, 1u64..60).prop_map(|(lo, width)| Action::RangeDelete { lo, width }),
        1 => Just(Action::Flush),
        1 => Just(Action::CompactAll),
        1 => Just(Action::Reopen),
    ]
}

/// Reference model entry: one version of a key.
#[derive(Debug, Clone)]
struct ModelVersion {
    seqno: u64,
    dkey: u64,
    value: Option<Vec<u8>>, // None = point tombstone
}

#[derive(Default)]
struct Model {
    versions: BTreeMap<Vec<u8>, Vec<ModelVersion>>,
    rts: Vec<(u64, u64, u64)>, // (seqno, lo, hi)
    seqno: u64,
}

impl Model {
    fn shadowed(&self, seqno: u64, dkey: u64) -> bool {
        self.rts
            .iter()
            .any(|(s, lo, hi)| seqno < *s && (*lo..=*hi).contains(&dkey))
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        // Newest-version-decides: the most recent version determines the
        // key's visibility; a range-erased or tombstone head hides it.
        let newest = self.versions.get(key)?.last()?;
        if self.shadowed(newest.seqno, newest.dkey) {
            return None;
        }
        newest.value.clone()
    }

    fn live_keys(&self) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.versions
            .keys()
            .filter_map(|k| self.get(k).map(|v| (k.clone(), v)))
            .collect()
    }
}

fn key_of(k: u8) -> Vec<u8> {
    format!("model-key-{k:03}").into_bytes()
}

fn small_opts() -> DbOptions {
    DbOptions {
        write_buffer_bytes: 2 << 10, // tiny: force frequent flushes
        level1_target_bytes: 8 << 10,
        target_file_bytes: 4 << 10,
        page_size: 512,
        max_levels: 4,
        ..DbOptions::default()
    }
}

fn run_scenario(actions: &[Action], pages_per_tile: usize, fade: Option<u64>) {
    let fs = Arc::new(MemFs::new());
    let mut opts = small_opts().with_tile(pages_per_tile);
    if let Some(d) = fade {
        opts = opts.with_fade(d);
    }
    let mut db = Db::open(fs.clone() as Arc<dyn Vfs>, "db", opts.clone()).unwrap();
    let mut model = Model::default();

    for action in actions {
        match action {
            Action::Put { key, value } => {
                let k = key_of(*key);
                let v = vec![*value; 16];
                let dkey = db.now();
                db.put_with_dkey(&k, &v, dkey).unwrap();
                model.seqno += 1;
                model.versions.entry(k).or_default().push(ModelVersion {
                    seqno: model.seqno,
                    dkey,
                    value: Some(v),
                });
            }
            Action::Delete { key } => {
                let k = key_of(*key);
                let tick = db.now();
                db.delete(&k).unwrap();
                model.seqno += 1;
                model.versions.entry(k).or_default().push(ModelVersion {
                    seqno: model.seqno,
                    dkey: tick,
                    value: None,
                });
            }
            Action::RangeDelete { lo, width } => {
                db.range_delete_secondary(*lo, lo + width).unwrap();
                model.seqno += 1;
                model.rts.push((model.seqno, *lo, lo + width));
            }
            Action::Flush => db.flush().unwrap(),
            Action::CompactAll => db.compact_all().unwrap(),
            Action::Reopen => {
                drop(db);
                db = Db::open(fs.clone() as Arc<dyn Vfs>, "db", opts.clone()).unwrap();
            }
        }
        // Check the full key space after every action so property-test
        // shrinking isolates the first divergent operation.
        for k in 0u8..24 {
            let key = key_of(k);
            let expected = model.get(&key);
            let got = db.get(&key).unwrap().map(|b| b.to_vec());
            assert_eq!(got, expected, "key {k} diverged after {action:?}");
        }
    }

    // Full equivalence check: every key the model knows + scan.
    for k in 0u8..24 {
        let key = key_of(k);
        let expected = model.get(&key);
        let got = db.get(&key).unwrap().map(|b| b.to_vec());
        assert_eq!(got, expected, "key {k} diverged from model");
    }
    let expected_scan = model.live_keys();
    let got_scan: Vec<(Vec<u8>, Vec<u8>)> = db
        .scan(b"model-key-000", b"model-key-999")
        .unwrap()
        .into_iter()
        .map(|(k, v)| (k.to_vec(), v.to_vec()))
        .collect();
    assert_eq!(got_scan, expected_scan, "scan diverged from model");
    db.verify_integrity().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_matches_model_classic_layout(
        actions in prop::collection::vec(action_strategy(), 1..120)
    ) {
        run_scenario(&actions, 1, None);
    }

    #[test]
    fn engine_matches_model_kiwi_layout(
        actions in prop::collection::vec(action_strategy(), 1..120)
    ) {
        run_scenario(&actions, 4, None);
    }

    #[test]
    fn engine_matches_model_with_fade(
        actions in prop::collection::vec(action_strategy(), 1..120)
    ) {
        run_scenario(&actions, 1, Some(500));
    }
}

#[test]
fn regression_interleaved_range_delete_and_reopen() {
    // Distilled from an early property-test failure: a range delete
    // followed by reopen must survive recovery via the manifest.
    let actions = vec![
        Action::Put { key: 1, value: 10 },
        Action::Put { key: 2, value: 20 },
        Action::RangeDelete { lo: 0, width: 50 },
        Action::Reopen,
        Action::Put { key: 1, value: 30 },
        Action::CompactAll,
    ];
    run_scenario(&actions, 1, None);
    run_scenario(&actions, 8, Some(100));
}

#[test]
fn regression_l0_page_drop_must_not_hide_chain_head() {
    // Distilled from a property-test failure: v1 of a key sits in one L0
    // file, v2 (range-covered) in a sibling L0 file. A page drop of the
    // second file during the L0 merge would remove the chain head and
    // resurrect v1; drops must be disabled for key-overlapping same-level
    // inputs.
    let actions = vec![
        Action::Put { key: 0, value: 0 },
        Action::Put { key: 0, value: 0 },
        Action::Put { key: 4, value: 0 },
        Action::Put { key: 0, value: 15 },
        Action::Put { key: 2, value: 213 },
        Action::Put {
            key: 18,
            value: 253,
        },
        Action::Put { key: 6, value: 36 },
        Action::Put { key: 7, value: 137 },
        Action::Flush,
        Action::RangeDelete { lo: 46, width: 59 },
        Action::Put { key: 4, value: 73 },
        Action::Flush,
        Action::RangeDelete { lo: 9, width: 20 },
        Action::CompactAll,
    ];
    run_scenario(&actions, 1, None);
    run_scenario(&actions, 8, None);
    run_scenario(&actions, 4, Some(1_000));
}

#[test]
fn regression_delete_then_flush_then_range_delete() {
    let actions = vec![
        Action::Put { key: 0, value: 1 },
        Action::Delete { key: 0 },
        Action::Flush,
        Action::RangeDelete { lo: 0, width: 199 },
        Action::Put { key: 0, value: 2 },
        Action::CompactAll,
        Action::Reopen,
    ];
    run_scenario(&actions, 1, None);
    run_scenario(&actions, 4, None);
}
