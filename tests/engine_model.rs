//! Invariant I2 (visibility): the engine's observable behaviour equals a
//! reference model, under random operation interleavings that include
//! flushes, full compactions, and reopen-from-disk.
//!
//! The model is a `BTreeMap<key, (seqno, dkey, value)>` plus the list of
//! issued range tombstones, replaying the engine's documented semantics
//! (newest visible version decides; range-erased versions fall through).

use std::collections::BTreeMap;
use std::sync::Arc;

use acheron::{Db, DbOptions, Snapshot};
use acheron_vfs::{MemFs, Vfs};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Action {
    Put { key: u8, value: u8 },
    Delete { key: u8 },
    RangeDelete { lo: u64, width: u64 },
    RangeDeleteKeys { lo: u8, width: u8 },
    Snapshot,
    Flush,
    CompactAll,
    Reopen,
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        8 => (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Action::Put { key: k % 24, value: v }),
        3 => any::<u8>().prop_map(|k| Action::Delete { key: k % 24 }),
        1 => (0u64..200, 1u64..60).prop_map(|(lo, width)| Action::RangeDelete { lo, width }),
        1 => (any::<u8>(), 0u8..12).prop_map(|(lo, width)| Action::RangeDeleteKeys {
            lo: lo % 24,
            width,
        }),
        1 => Just(Action::Snapshot),
        1 => Just(Action::Flush),
        1 => Just(Action::CompactAll),
        1 => Just(Action::Reopen),
    ]
}

/// Reference model entry: one version of a key.
#[derive(Debug, Clone)]
struct ModelVersion {
    seqno: u64,
    dkey: u64,
    value: Option<Vec<u8>>, // None = point tombstone
}

#[derive(Default)]
struct Model {
    versions: BTreeMap<Vec<u8>, Vec<ModelVersion>>,
    rts: Vec<(u64, u64, u64)>,          // (seqno, lo, hi) over dkeys
    krts: Vec<(u64, Vec<u8>, Vec<u8>)>, // (seqno, lo, hi) over sort keys
    seqno: u64,
}

impl Model {
    fn shadowed(&self, seqno: u64, dkey: u64) -> bool {
        self.rts
            .iter()
            .any(|(s, lo, hi)| seqno < *s && (*lo..=*hi).contains(&dkey))
    }

    fn key_shadowed(&self, seqno: u64, key: &[u8]) -> bool {
        self.krts
            .iter()
            .any(|(s, lo, hi)| seqno < *s && lo.as_slice() <= key && key <= hi.as_slice())
    }

    fn get_at(&self, key: &[u8], snapshot: u64) -> Option<Vec<u8>> {
        // Newest-version-decides at the snapshot horizon: the most
        // recent visible version determines the key's state; a
        // range-erased or tombstone head hides it.
        let newest = self
            .versions
            .get(key)?
            .iter()
            .rev()
            .find(|v| v.seqno <= snapshot)?;
        let covered = self.rts.iter().any(|(s, lo, hi)| {
            newest.seqno < *s && *s <= snapshot && (*lo..=*hi).contains(&newest.dkey)
        }) || self.krts.iter().any(|(s, lo, hi)| {
            newest.seqno < *s && *s <= snapshot && lo.as_slice() <= key && key <= hi.as_slice()
        });
        if covered {
            return None;
        }
        newest.value.clone()
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        // Newest-version-decides: the most recent version determines the
        // key's visibility; a range-erased or tombstone head hides it.
        let newest = self.versions.get(key)?.last()?;
        if self.shadowed(newest.seqno, newest.dkey) || self.key_shadowed(newest.seqno, key) {
            return None;
        }
        newest.value.clone()
    }

    fn live_keys(&self) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.versions
            .keys()
            .filter_map(|k| self.get(k).map(|v| (k.clone(), v)))
            .collect()
    }

    fn live_keys_at(&self, snapshot: u64) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.versions
            .keys()
            .filter_map(|k| self.get_at(k, snapshot).map(|v| (k.clone(), v)))
            .collect()
    }
}

fn key_of(k: u8) -> Vec<u8> {
    format!("model-key-{k:03}").into_bytes()
}

fn small_opts() -> DbOptions {
    DbOptions {
        write_buffer_bytes: 2 << 10, // tiny: force frequent flushes
        level1_target_bytes: 8 << 10,
        target_file_bytes: 4 << 10,
        page_size: 512,
        max_levels: 4,
        ..DbOptions::default()
    }
}

fn run_scenario(actions: &[Action], pages_per_tile: usize, fade: Option<u64>) {
    let fs = Arc::new(MemFs::new());
    let mut opts = small_opts().with_tile(pages_per_tile);
    if let Some(d) = fade {
        opts = opts.with_fade(d);
    }
    let mut db = Db::open(fs.clone() as Arc<dyn Vfs>, "db", opts.clone()).unwrap();
    let mut model = Model::default();
    // At most one pinned snapshot at a time: (engine snapshot, model
    // seqno horizon at the moment it was taken).
    let mut pinned: Option<(Snapshot, u64)> = None;

    for action in actions {
        match action {
            Action::Put { key, value } => {
                let k = key_of(*key);
                let v = vec![*value; 16];
                let dkey = db.now();
                db.put_with_dkey(&k, &v, dkey).unwrap();
                model.seqno += 1;
                model.versions.entry(k).or_default().push(ModelVersion {
                    seqno: model.seqno,
                    dkey,
                    value: Some(v),
                });
            }
            Action::Delete { key } => {
                let k = key_of(*key);
                let tick = db.now();
                db.delete(&k).unwrap();
                model.seqno += 1;
                model.versions.entry(k).or_default().push(ModelVersion {
                    seqno: model.seqno,
                    dkey: tick,
                    value: None,
                });
            }
            Action::RangeDelete { lo, width } => {
                db.range_delete_secondary(*lo, lo + width).unwrap();
                model.seqno += 1;
                model.rts.push((model.seqno, *lo, lo + width));
            }
            Action::RangeDeleteKeys { lo, width } => {
                let a = key_of(*lo);
                let b = key_of((lo + width) % 24);
                let (start, end) = if a <= b { (a, b) } else { (b, a) };
                db.range_delete_keys(&start, &end).unwrap();
                model.seqno += 1;
                model.krts.push((model.seqno, start, end));
            }
            Action::Snapshot => {
                pinned = Some((db.snapshot(), model.seqno));
            }
            Action::Flush => db.flush().unwrap(),
            Action::CompactAll => db.compact_all().unwrap(),
            Action::Reopen => {
                // A snapshot cannot outlive its engine instance; drop it
                // first so reopen also exercises unpinned purge paths.
                pinned = None;
                drop(db);
                db = Db::open(fs.clone() as Arc<dyn Vfs>, "db", opts.clone()).unwrap();
            }
        }
        // Check the full key space after every action so property-test
        // shrinking isolates the first divergent operation.
        for k in 0u8..24 {
            let key = key_of(k);
            let expected = model.get(&key);
            let got = db.get(&key).unwrap().map(|b| b.to_vec());
            assert_eq!(got, expected, "key {k} diverged after {action:?}");
        }
        // A pinned snapshot must keep seeing the world as of the moment
        // it was taken, no matter what flushed/compacted since.
        if let Some((snap, at)) = &pinned {
            for k in 0u8..24 {
                let key = key_of(k);
                let expected = model.get_at(&key, *at);
                let got = db.get_at(snap, &key).unwrap().map(|b| b.to_vec());
                assert_eq!(got, expected, "snapshot key {k} diverged after {action:?}");
            }
            let expected_scan = model.live_keys_at(*at);
            let got_scan: Vec<(Vec<u8>, Vec<u8>)> = db
                .scan_at(snap, b"model-key-000", b"model-key-999")
                .unwrap()
                .into_iter()
                .map(|(k, v)| (k.to_vec(), v.to_vec()))
                .collect();
            assert_eq!(
                got_scan, expected_scan,
                "snapshot scan diverged after {action:?}"
            );
        }
    }

    // Full equivalence check: every key the model knows + scan.
    for k in 0u8..24 {
        let key = key_of(k);
        let expected = model.get(&key);
        let got = db.get(&key).unwrap().map(|b| b.to_vec());
        assert_eq!(got, expected, "key {k} diverged from model");
    }
    let expected_scan = model.live_keys();
    let got_scan: Vec<(Vec<u8>, Vec<u8>)> = db
        .scan(b"model-key-000", b"model-key-999")
        .unwrap()
        .into_iter()
        .map(|(k, v)| (k.to_vec(), v.to_vec()))
        .collect();
    assert_eq!(got_scan, expected_scan, "scan diverged from model");
    db.verify_integrity().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_matches_model_classic_layout(
        actions in prop::collection::vec(action_strategy(), 1..120)
    ) {
        run_scenario(&actions, 1, None);
    }

    #[test]
    fn engine_matches_model_kiwi_layout(
        actions in prop::collection::vec(action_strategy(), 1..120)
    ) {
        run_scenario(&actions, 4, None);
    }

    #[test]
    fn engine_matches_model_with_fade(
        actions in prop::collection::vec(action_strategy(), 1..120)
    ) {
        run_scenario(&actions, 1, Some(500));
    }
}

#[test]
fn regression_interleaved_range_delete_and_reopen() {
    // Distilled from an early property-test failure: a range delete
    // followed by reopen must survive recovery via the manifest.
    let actions = vec![
        Action::Put { key: 1, value: 10 },
        Action::Put { key: 2, value: 20 },
        Action::RangeDelete { lo: 0, width: 50 },
        Action::Reopen,
        Action::Put { key: 1, value: 30 },
        Action::CompactAll,
    ];
    run_scenario(&actions, 1, None);
    run_scenario(&actions, 8, Some(100));
}

#[test]
fn regression_l0_page_drop_must_not_hide_chain_head() {
    // Distilled from a property-test failure: v1 of a key sits in one L0
    // file, v2 (range-covered) in a sibling L0 file. A page drop of the
    // second file during the L0 merge would remove the chain head and
    // resurrect v1; drops must be disabled for key-overlapping same-level
    // inputs.
    let actions = vec![
        Action::Put { key: 0, value: 0 },
        Action::Put { key: 0, value: 0 },
        Action::Put { key: 4, value: 0 },
        Action::Put { key: 0, value: 15 },
        Action::Put { key: 2, value: 213 },
        Action::Put {
            key: 18,
            value: 253,
        },
        Action::Put { key: 6, value: 36 },
        Action::Put { key: 7, value: 137 },
        Action::Flush,
        Action::RangeDelete { lo: 46, width: 59 },
        Action::Put { key: 4, value: 73 },
        Action::Flush,
        Action::RangeDelete { lo: 9, width: 20 },
        Action::CompactAll,
    ];
    run_scenario(&actions, 1, None);
    run_scenario(&actions, 8, None);
    run_scenario(&actions, 4, Some(1_000));
}

#[test]
fn regression_key_range_delete_survives_flush_compact_reopen() {
    // A sort-key range tombstone must keep erasing covered keys through
    // every persistence transition: memtable, SSTable meta block after
    // flush, merged output after full compaction, and recovery.
    let actions = vec![
        Action::Put { key: 3, value: 30 },
        Action::Put { key: 5, value: 50 },
        Action::Put { key: 20, value: 99 },
        Action::RangeDeleteKeys { lo: 2, width: 6 },
        Action::Flush,
        Action::Put { key: 4, value: 40 }, // newer than the range: visible
        Action::CompactAll,
        Action::Reopen,
        Action::RangeDeleteKeys { lo: 0, width: 23 },
        Action::CompactAll,
    ];
    run_scenario(&actions, 1, None);
    run_scenario(&actions, 4, None);
    run_scenario(&actions, 1, Some(100));
}

#[test]
fn regression_snapshot_must_not_resurrect_deleted_key() {
    // Found by the property sweep: a snapshot pinning the *pre-delete*
    // version of a key blocked the bottommost tombstone drop's stratum
    // dedup from removing it — but the tombstone itself (invisible to
    // the snapshot) was still dropped, promoting the pinned put back to
    // chain head for live readers.
    let actions = vec![
        Action::Put { key: 5, value: 140 },
        Action::Snapshot,
        Action::Delete { key: 5 },
        Action::CompactAll,
    ];
    run_scenario(&actions, 1, None);
    run_scenario(&actions, 4, None);
    run_scenario(&actions, 1, Some(100));
}

#[test]
fn regression_snapshot_pins_keys_across_key_range_delete() {
    // A snapshot taken before a sort-key range delete must keep seeing
    // the erased keys, even after the live view flushes and compacts.
    let actions = vec![
        Action::Put { key: 1, value: 11 },
        Action::Put { key: 2, value: 22 },
        Action::Snapshot,
        Action::RangeDeleteKeys { lo: 0, width: 10 },
        Action::Flush,
        Action::Put { key: 1, value: 33 },
        Action::CompactAll,
    ];
    run_scenario(&actions, 1, None);
    run_scenario(&actions, 8, Some(200));
}

#[test]
fn regression_delete_then_flush_then_range_delete() {
    let actions = vec![
        Action::Put { key: 0, value: 1 },
        Action::Delete { key: 0 },
        Action::Flush,
        Action::RangeDelete { lo: 0, width: 199 },
        Action::Put { key: 0, value: 2 },
        Action::CompactAll,
        Action::Reopen,
    ];
    run_scenario(&actions, 1, None);
    run_scenario(&actions, 4, None);
}

#[test]
#[ignore]
fn debug_find_failing_case() {
    let mut rng =
        proptest::TestRng::from_label("engine_model::engine_matches_model_classic_layout");
    let strat = prop::collection::vec(action_strategy(), 1..120);
    for case in 0..48 {
        let actions = strat.generate(&mut rng);
        let run = |a: &[Action]| {
            let a = a.to_vec();
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                run_scenario(&a, 1, None)
            }))
            .is_err()
        };
        if run(&actions) {
            let mut min = actions.clone();
            let mut i = 0;
            while i < min.len() {
                let mut cand = min.clone();
                cand.remove(i);
                if run(&cand) {
                    min = cand;
                } else {
                    i += 1;
                }
            }
            eprintln!("case {case}: minimized to {} actions:", min.len());
            for a in &min {
                eprintln!("  {a:?}");
            }
            panic!("found failing case");
        }
    }
}
