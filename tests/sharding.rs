//! End-to-end tests for horizontal keyspace sharding: partitioning must
//! change the layout, never the answer.
//!
//! * the same seeded workload driven against an embedded single-shard
//!   engine and a four-shard server is *result-identical* (per-op
//!   digests and full-scan byte equality);
//! * a power cut swept across the durability points of a sharded run
//!   reopens with **every** shard recovered — acked writes readable, no
//!   resurrected deletes, and never a silently dropped shard;
//! * per-connection token-bucket admission control sheds excess load as
//!   `Busy` at the wire while control-plane requests stay exempt;
//! * a sharded server's metrics aggregate per-shard series plus the
//!   fleet-wide maximum tombstone age, and its event ring is rendered
//!   per shard.

use std::collections::BTreeSet;
use std::sync::Arc;

use acheron::testutil::{model_after, CrashConfig, CrashWorkload, WorkloadOp};
use acheron::{Db, DbOptions, ShardedDb};
use acheron_server::{
    Client, ClientOptions, RateLimitConfig, Request, Response, Server, ServerOptions,
};
use acheron_vfs::{FaultVfs, MemFs, Vfs};
use acheron_workload::{run_ops, KeyDistribution, OpMix, WorkloadGen, WorkloadSpec};

fn open_sharded(shards: usize) -> Arc<ShardedDb> {
    Arc::new(ShardedDb::open(Arc::new(MemFs::new()), "db", DbOptions::small(), shards).unwrap())
}

// ---------------------------------------------------------------------
// Digest equivalence: sharded server vs. single-shard embedded
// ---------------------------------------------------------------------

#[test]
fn sharded_server_matches_single_shard_embedded_run() {
    let ops = WorkloadGen::new(WorkloadSpec::new(
        OpMix::mixed(40, 10, 40, 10),
        KeyDistribution::uniform(2_000),
    ))
    .take(6_000);

    let embedded_db = Arc::new(Db::open(Arc::new(MemFs::new()), "db", DbOptions::small()).unwrap());
    let embedded = run_ops(&*embedded_db, &ops).unwrap();

    let served_db = open_sharded(4);
    let mut server = Server::start(
        Arc::clone(&served_db),
        "127.0.0.1:0",
        ServerOptions::default(),
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let remote = run_ops(&mut client, &ops).unwrap();

    // Per-op read results digested identically...
    assert_eq!(embedded.check_digest, remote.check_digest);
    assert_eq!(embedded.get_hits, remote.get_hits);
    assert_eq!(embedded.get_misses, remote.get_misses);
    assert_eq!(embedded.scan_rows, remote.scan_rows);

    // ...the final contents are byte-identical through the wire...
    let embedded_rows: Vec<(Vec<u8>, Vec<u8>)> = embedded_db
        .scan(b"", &[0xff; 16])
        .unwrap()
        .into_iter()
        .map(|(k, v)| (k.to_vec(), v.to_vec()))
        .collect();
    let remote_rows = client.scan(b"", &[0xff; 16]).unwrap();
    assert_eq!(embedded_rows, remote_rows);
    assert!(!embedded_rows.is_empty(), "workload must leave data behind");

    // ...and the router ticked the fleet clock exactly like one engine.
    assert_eq!(served_db.now(), embedded_db.now());

    server.shutdown();
    embedded_db.verify_integrity().unwrap();
    served_db.verify_integrity().unwrap();
}

/// The same seeded workload — now including sort-key range deletes,
/// which the router must broadcast to every shard — drives an embedded
/// single-shard engine and a four-shard server; the surviving contents
/// must be byte-identical through the wire.
#[test]
fn sharded_range_deletes_match_single_shard_embedded() {
    let ops = CrashWorkload {
        seed: 0x5EED_0019,
        ops: 1_200,
        key_space: 512,
        delete_percent: 20,
        range_delete_percent: 12,
        large_value_percent: 15,
    }
    .generate();
    let range_ops = ops
        .iter()
        .filter(|op| matches!(op, WorkloadOp::RangeDeleteKeys { .. }))
        .count() as u64;
    assert!(range_ops > 20, "workload must exercise range deletes");

    let embedded_db = Arc::new(Db::open(Arc::new(MemFs::new()), "db", DbOptions::small()).unwrap());
    for op in &ops {
        acheron::testutil::apply_op(&embedded_db, op).unwrap();
    }

    let served_db = open_sharded(4);
    let mut server = Server::start(
        Arc::clone(&served_db),
        "127.0.0.1:0",
        ServerOptions::default(),
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    for op in &ops {
        match op {
            WorkloadOp::Put { key, stamp, large } => client
                .put(&key_bytes(*key), &value_bytes(*stamp, *large))
                .unwrap(),
            WorkloadOp::Delete { key } => client.delete(&key_bytes(*key)).unwrap(),
            WorkloadOp::RangeDeleteKeys { lo, hi } => client
                .range_delete_keys(&key_bytes(*lo), &key_bytes(*hi))
                .unwrap(),
        }
    }

    let embedded_rows: Vec<(Vec<u8>, Vec<u8>)> = embedded_db
        .scan(b"", &[0xff; 16])
        .unwrap()
        .into_iter()
        .map(|(k, v)| (k.to_vec(), v.to_vec()))
        .collect();
    let remote_rows = client.scan(b"", &[0xff; 16]).unwrap();
    assert_eq!(embedded_rows, remote_rows);
    assert!(!embedded_rows.is_empty(), "workload must leave data behind");

    // The broadcast really reached every shard: the fleet-summed
    // counter records one range delete per shard per op.
    let stats = client.stats().unwrap();
    let fleet_range_deletes = stats
        .iter()
        .find(|(n, _)| n == "sort_range_deletes")
        .map(|(_, v)| *v)
        .expect("sort_range_deletes missing from stats");
    assert_eq!(fleet_range_deletes, range_ops * SHARDS as u64);

    server.shutdown();
    embedded_db.verify_integrity().unwrap();
    served_db.verify_integrity().unwrap();
}

// ---------------------------------------------------------------------
// Power-cut sweep: every shard recovered, none silently dropped
// ---------------------------------------------------------------------

const SHARDS: usize = 4;

fn key_bytes(k: u32) -> Vec<u8> {
    format!("key{k:06}").into_bytes()
}

fn value_bytes(stamp: u64, large: bool) -> Vec<u8> {
    // Must mirror testutil's encoding byte for byte: the embedded
    // engine writes through `apply_op`, the served fleet through here.
    let mut v = format!("stamp{stamp:010}").into_bytes();
    if large {
        while v.len() < acheron::testutil::LARGE_VALUE_BYTES {
            v.push(b'#');
        }
    }
    v
}

fn parse_stamp(v: &[u8]) -> Option<u64> {
    std::str::from_utf8(v)
        .ok()?
        .strip_prefix("stamp")?
        .get(..10)?
        .parse()
        .ok()
}

fn apply(db: &ShardedDb, op: &WorkloadOp) -> acheron_types::Result<()> {
    match op {
        WorkloadOp::Put { key, stamp, large } => {
            db.put(&key_bytes(*key), &value_bytes(*stamp, *large))
        }
        WorkloadOp::Delete { key } => db.delete(&key_bytes(*key)),
        WorkloadOp::RangeDeleteKeys { lo, hi } => {
            db.range_delete_keys(&key_bytes(*lo), &key_bytes(*hi))
        }
    }
}

/// Run the crash workload against a fresh sharded fleet, cut power at
/// the `point`-th durability point, reboot, reopen, and check the
/// recovery invariants across every shard.
fn run_sharded_crash_point(cfg: &CrashConfig, point: u64) -> Vec<String> {
    let ops = cfg.workload.generate();
    let fault = FaultVfs::with_seed(
        Arc::new(MemFs::new()),
        cfg.workload.seed ^ point.wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    fault.set_cut_durability(cfg.cut);
    let mut violations = Vec::new();

    let db = ShardedDb::open(Arc::new(fault.clone()), "db", cfg.db_options(), SHARDS)
        .expect("clean open");
    fault.reset_points();
    fault.arm_power_cut_at(point);
    let mut acked = 0usize;
    let mut in_flight = false;
    for op in &ops {
        match apply(&db, op) {
            Ok(()) => acked += 1,
            Err(_) => {
                // The op that surfaced the crash is the single op whose
                // durability is legitimately ambiguous.
                in_flight = true;
                break;
            }
        }
    }
    drop(db);
    fault.reboot();

    match ShardedDb::open(Arc::new(fault.clone()), "db", cfg.db_options(), SHARDS) {
        Err(e) => violations.push(format!("reopen after crash failed: {e}")),
        Ok(db) => {
            // The shard map must still describe the full fleet — a
            // partial reopen would be a silent data loss across an
            // entire hash class.
            assert_eq!(db.shard_count(), SHARDS);

            let expect = model_after(&ops, acked);
            let next = (in_flight && acked < ops.len())
                .then(|| (ops[acked], model_after(&ops, acked + 1)));
            let keys: BTreeSet<u32> = ops.iter().flat_map(|op| op.keys()).collect();
            for key in keys {
                let got = match db.get(&key_bytes(key)) {
                    Ok(v) => v,
                    Err(e) => {
                        violations.push(format!("key {key}: read after recovery failed: {e}"));
                        continue;
                    }
                };
                let got_stamp = got.as_deref().and_then(parse_stamp);
                if got.is_some() && got_stamp.is_none() {
                    violations.push(format!("key {key}: unparseable recovered value"));
                    continue;
                }
                let want = expect.get(&key).copied().flatten();
                if got_stamp == want {
                    continue;
                }
                if let Some((op, next_model)) = &next {
                    if op.touches(key) && got_stamp == next_model.get(&key).copied().flatten() {
                        continue;
                    }
                }
                violations.push(format!(
                    "key {key}: expected stamp {want:?} after {acked} acked ops, \
                     found {got_stamp:?}"
                ));
            }
            if let Err(e) = db.verify_integrity() {
                violations.push(format!("verify_integrity after recovery: {e}"));
            }
        }
    }
    violations
        .into_iter()
        .map(|v| format!("point {point}: {v}"))
        .collect()
}

#[test]
fn power_cut_sweep_recovers_every_shard() {
    let cfg = CrashConfig {
        workload: CrashWorkload {
            ops: 250,
            ..CrashWorkload::default()
        },
        ..CrashConfig::default()
    };

    // Count the durability points of the full sharded run with no fault
    // armed, then sweep a spread of crash instants across that space.
    let fault = FaultVfs::with_seed(Arc::new(MemFs::new()), cfg.workload.seed);
    fault.set_cut_durability(cfg.cut);
    let db = ShardedDb::open(Arc::new(fault.clone()), "db", cfg.db_options(), SHARDS)
        .expect("clean open");
    fault.reset_points();
    for op in cfg.workload.generate() {
        apply(&db, &op).expect("no fault armed");
    }
    drop(db);
    let total = fault.durability_points();
    assert!(total > 10, "workload must generate real durability points");

    let sweep = 12;
    let mut violations = Vec::new();
    for i in 0..sweep {
        // Even spread, skipping point 0 (crash before any durability).
        let point = 1 + i * total / sweep;
        violations.extend(run_sharded_crash_point(&cfg, point));
    }
    assert!(violations.is_empty(), "{violations:#?}");
}

#[test]
fn crashed_fleet_rejects_resharding_on_reopen() {
    // A crash must not create a window where the fleet silently reopens
    // at a different width: the durable shard map pins the count.
    let cfg = CrashConfig::default();
    let fault = FaultVfs::with_seed(Arc::new(MemFs::new()), 0xDEAD);
    fault.set_cut_durability(cfg.cut);
    let db = ShardedDb::open(Arc::new(fault.clone()), "db", cfg.db_options(), SHARDS)
        .expect("clean open");
    fault.reset_points();
    fault.arm_power_cut_at(40);
    for op in cfg.workload.generate() {
        if apply(&db, &op).is_err() {
            break;
        }
    }
    drop(db);
    fault.reboot();

    let fs: Arc<dyn Vfs> = Arc::new(fault.clone());
    ShardedDb::open(Arc::clone(&fs), "db", cfg.db_options(), SHARDS / 2).unwrap_err();
    ShardedDb::open(fs, "db", cfg.db_options(), SHARDS).unwrap();
}

// ---------------------------------------------------------------------
// Admission control at the wire
// ---------------------------------------------------------------------

#[test]
fn rate_limited_connections_shed_busy_and_recover() {
    let db = open_sharded(2);
    let mut server = Server::start(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerOptions {
            // 1 op/sec refill: within the test's lifetime the bucket is
            // effectively just its burst, so outcomes are deterministic.
            rate_limit: Some(RateLimitConfig {
                ops_per_sec: 1,
                burst: 5,
            }),
            ..ServerOptions::default()
        },
    )
    .unwrap();
    let mut client = Client::connect_with(
        server.local_addr(),
        ClientOptions {
            busy_retries: 0,
            ..ClientOptions::default()
        },
    )
    .unwrap();

    let mut admitted = 0u64;
    let mut shed = 0u64;
    for i in 0..20u32 {
        let req = Request::Put {
            key: format!("key{i:06}").into_bytes(),
            value: b"v".to_vec(),
            dkey: None,
        };
        match client.request(&req).unwrap() {
            Response::Unit => admitted += 1,
            Response::Busy => shed += 1,
            other => panic!("unexpected response: {other:?}"),
        }
    }
    // The burst admits the first 5 ops; a slow refill may sneak in a
    // token or two, but the bulk of the flood is shed pre-engine.
    assert!(admitted >= 5, "burst must be admitted, got {admitted}");
    assert!(shed >= 10, "flood must be shed, got {shed} of 20");

    // Control-plane requests are exempt: an operator can always probe
    // and scrape a saturated server.
    assert_eq!(client.request(&Request::Ping).unwrap(), Response::Unit);
    let metrics = client.metrics().unwrap();
    let rate_limited: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("server_rate_limited "))
        .expect("server_rate_limited metric present")
        .trim()
        .parse()
        .unwrap();
    assert_eq!(rate_limited, shed, "every shed op is counted");

    // A fresh connection gets a fresh bucket: shedding is per-conn.
    let mut second = Client::connect(server.local_addr()).unwrap();
    second.put(b"fresh-conn", b"v").unwrap();

    server.shutdown();
}

// ---------------------------------------------------------------------
// Fleet observability over the wire
// ---------------------------------------------------------------------

#[test]
fn sharded_server_exposes_fleet_and_per_shard_metrics() {
    let db = open_sharded(4);
    let mut server =
        Server::start(Arc::clone(&db), "127.0.0.1:0", ServerOptions::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Spread writes and deletes across every shard, then leave some
    // tombstones live so the fleet age gauge has something to report.
    for i in 0..400u32 {
        client
            .put(format!("key{i:06}").as_bytes(), b"value")
            .unwrap();
    }
    for i in 0..200u32 {
        client.delete(format!("key{i:06}").as_bytes()).unwrap();
    }

    let metrics = client.metrics().unwrap();
    assert!(
        metrics.contains("\ndb_shards 4\n") || metrics.starts_with("db_shards 4\n"),
        "fleet width must be exported:\n{metrics}"
    );
    for shard in 0..4 {
        let series = format!("db_shard_live_tombstones{{shard=\"{shard}\"}}");
        assert!(
            metrics.contains(&series),
            "per-shard series {series} missing:\n{metrics}"
        );
    }
    assert!(
        metrics.contains("db_fleet_max_tombstone_age_ticks "),
        "fleet max tombstone age must always be exported:\n{metrics}"
    );

    // The aggregated engine counters cover the whole fleet, not one
    // shard: every put and delete the client sent is accounted for.
    let stats = client.stats().unwrap();
    let lookup = |name: &str| {
        stats
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("{name} missing from stats"))
    };
    assert_eq!(lookup("puts"), 400);
    assert_eq!(lookup("deletes"), 200);

    // The event ring is rendered per shard, with one section each.
    let events = client.events().unwrap();
    for shard in 0..4 {
        let header = format!("== shard {shard} ==");
        assert!(events.contains(&header), "missing {header}:\n{events}");
    }

    server.shutdown();
    db.verify_integrity().unwrap();
}

/// Value separation composes with sharding: each shard runs its own
/// value log, and the wire-level stats and metrics merge them into one
/// fleet-wide view.
#[test]
fn sharded_server_merges_vlog_stats_across_shards() {
    let mut opts = DbOptions::small().with_value_separation(64);
    opts.vlog_segment_bytes = 4 << 10;
    let db = Arc::new(ShardedDb::open(Arc::new(MemFs::new()), "db", opts, 4).unwrap());
    let mut server =
        Server::start(Arc::clone(&db), "127.0.0.1:0", ServerOptions::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Every value clears the threshold, so every put is a vlog append
    // on whichever shard owns the key.
    for i in 0..200u32 {
        client
            .put(format!("key{i:06}").as_bytes(), &[b'v'; 300])
            .unwrap();
    }

    let stats = client.stats().unwrap();
    let lookup = |name: &str| {
        stats
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("{name} missing from stats"))
    };
    assert_eq!(
        lookup("vlog_appends"),
        200,
        "every separated put must be counted fleet-wide"
    );
    assert!(lookup("vlog_bytes_written") > 200 * 300);

    // Every shard took part (the keyspace is wide enough to hit all
    // four), so the fleet numbers are a genuine merge, not one shard.
    assert!(db.shard_stats().iter().all(|s| s.vlog_appends > 0));
    let merged = db.stats_snapshot();
    assert_eq!(
        merged.vlog_appends,
        db.shard_stats().iter().map(|s| s.vlog_appends).sum::<u64>()
    );

    // The fleet gauge view merges per-shard value-log liveness.
    let live: u64 = client
        .metrics()
        .unwrap()
        .lines()
        .find_map(|l| l.strip_prefix("db_vlog_live_bytes "))
        .expect("db_vlog_live_bytes metric present")
        .trim()
        .parse()
        .unwrap();
    assert!(live > 0, "live separated values must surface in the gauge");

    server.shutdown();
    db.verify_integrity().unwrap();
}
