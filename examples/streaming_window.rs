//! Streaming with a retention window: cheap expiry via KiWi.
//!
//! A stream processor stores events keyed by `(source, event-id)` but
//! must retain only the last `WINDOW` ticks of data. The retention
//! attribute (event timestamp) is *not* the sort key, so a vanilla LSM
//! must either scan-and-delete or rewrite the whole tree. Acheron's
//! secondary range delete erases by timestamp directly, and the KiWi
//! layout lets compactions drop whole pages of expired events unread.
//!
//! Run with: `cargo run --example streaming_window`

use std::sync::Arc;

use acheron::{Db, DbOptions};
use acheron_vfs::MemFs;

const SOURCES: u64 = 50;
const EVENTS: u64 = 40_000;
const WINDOW: u64 = 10_000; // retention in ticks
const EXPIRE_EVERY: u64 = 5_000;

fn main() {
    // h = 8: each SSTable tile spreads its pages across the timestamp
    // domain, so expiry drops pages wholesale.
    let opts = DbOptions::small().with_tile(8);
    let db = Db::open(Arc::new(MemFs::new()), "stream", opts).unwrap();

    let mut expired_to = 0u64;
    for event in 0..EVENTS {
        let source = event % SOURCES;
        let key = format!("src{source:03}:evt{event:010}");
        let timestamp = db.now();
        db.put_with_dkey(key.as_bytes(), b"payload-bytes", timestamp)
            .unwrap();

        if event % EXPIRE_EVERY == EXPIRE_EVERY - 1 {
            let now = db.now();
            if now > WINDOW {
                let cutoff = now - WINDOW;
                if cutoff > expired_to {
                    db.range_delete_secondary(expired_to, cutoff).unwrap();
                    expired_to = cutoff + 1;
                    println!(
                        "tick {now:>6}: expired everything older than {cutoff} \
                         (live range tombstones: {})",
                        db.live_range_tombstones().len()
                    );
                }
            }
        }
    }

    // Reclaim storage; compactions drop covered KiWi pages without
    // reading them.
    db.compact_all().unwrap();
    let dropped = db
        .stats()
        .pages_dropped
        .load(std::sync::atomic::Ordering::Relaxed);
    let purged = db
        .stats()
        .entries_range_purged
        .load(std::sync::atomic::Ordering::Relaxed);

    // What survived?
    let survivors = db.scan(b"src000", b"src999").unwrap();
    let oldest_surviving = survivors
        .iter()
        .map(|(k, _)| k.clone())
        .min()
        .map(|k| String::from_utf8_lossy(&k).into_owned());

    println!("\nevents ingested:              {EVENTS}");
    println!("events surviving the window:  {}", survivors.len());
    println!("entries purged by expiry:     {purged}");
    println!("KiWi pages dropped unread:    {dropped}");
    println!("oldest surviving key:         {oldest_surviving:?}");
    println!("table bytes after reclaim:    {}", db.table_bytes());
    assert!(
        survivors.len() as u64 <= WINDOW + EXPIRE_EVERY,
        "retention must bound the live set"
    );
}
