//! Compaction explorer: watch the tree take shape under different
//! strategies — the interactive heart of the Acheron/Compactionary
//! demos, in terminal form.
//!
//! Runs the same delete-containing workload under four configurations
//! and renders each tree's level occupancy, tombstone population, and
//! amplification after every workload phase.
//!
//! Run with: `cargo run --example compaction_explorer`

use std::sync::Arc;

use acheron::{CompactionLayout, Db, DbOptions};
use acheron_vfs::MemFs;

fn render(db: &Db, label: &str) {
    println!("  [{label}]");
    for level in db.level_summary() {
        if level.files == 0 {
            continue;
        }
        let bar = "#".repeat(((level.bytes / 8_192) as usize).clamp(1, 60));
        println!(
            "    L{} {:<60} {:>4} files {:>3} runs {:>8} B {:>6} entries {:>5} tombstones",
            level.level, bar, level.files, level.runs, level.bytes, level.entries, level.tombstones
        );
    }
    use std::sync::atomic::Ordering::Relaxed;
    println!(
        "    write-amp {:.2} | compactions {} (ttl {}) | live tombstones {} | tombstones purged {}",
        db.stats().write_amplification(),
        db.stats().compactions.load(Relaxed),
        db.stats().ttl_compactions.load(Relaxed),
        db.live_tombstones(),
        db.stats().tombstones_purged.load(Relaxed),
    );
}

fn main() {
    let configs: Vec<(&str, DbOptions)> = vec![
        ("leveling (baseline)", DbOptions::small()),
        (
            "tiering (write-optimized)",
            DbOptions {
                layout: CompactionLayout::Tiering,
                ..DbOptions::small()
            },
        ),
        (
            "lazy leveling (hybrid)",
            DbOptions {
                layout: CompactionLayout::LazyLeveling,
                ..DbOptions::small()
            },
        ),
        (
            "leveling + FADE D_th=20k",
            DbOptions::small().with_fade(20_000),
        ),
    ];

    let dbs: Vec<(&str, Db)> = configs
        .into_iter()
        .map(|(label, opts)| (label, Db::open(Arc::new(MemFs::new()), "db", opts).unwrap()))
        .collect();

    type Phase<'a> = (&'a str, Box<dyn Fn(&Db)>);
    let phases: Vec<Phase> = vec![
        (
            "phase 1: bulk ingest 15k keys",
            Box::new(|db: &Db| {
                for i in 0..15_000u64 {
                    db.put(format!("key{i:08}").as_bytes(), &[b'v'; 48])
                        .unwrap();
                }
            }),
        ),
        (
            "phase 2: delete every 4th key",
            Box::new(|db: &Db| {
                for i in (0..15_000u64).step_by(4) {
                    db.delete(format!("key{i:08}").as_bytes()).unwrap();
                }
            }),
        ),
        (
            "phase 3: quiet period (clock advances, maintenance runs)",
            Box::new(|db: &Db| {
                for _ in 0..5 {
                    db.advance_clock(10_000);
                    db.maintain().unwrap();
                }
            }),
        ),
        (
            "phase 4: hot updates on a small range",
            Box::new(|db: &Db| {
                for round in 0..8u64 {
                    for i in 0..1_500u64 {
                        db.put(
                            format!("key{i:08}").as_bytes(),
                            format!("round-{round}").as_bytes(),
                        )
                        .unwrap();
                    }
                }
            }),
        ),
    ];

    for (phase_label, work) in &phases {
        println!("\n=== {phase_label} ===");
        for (label, db) in &dbs {
            work(db);
            render(db, label);
        }
    }

    println!(
        "\nThings to notice: tiering stacks runs per level (more runs, lower write-amp);\n\
         FADE's tombstone count collapses in the quiet phase while the baseline's\n\
         lingers; lazy leveling keeps the bottom level as one run."
    );
}
