//! Deletion compliance: bounding how long "deleted" data survives.
//!
//! The scenario behind Acheron's motivation (GDPR right-to-be-forgotten,
//! CCPA right-to-delete): when a user asks for erasure, a vanilla LSM
//! only *logically* deletes — the tombstone and the user's data survive
//! in the tree until some future compaction happens to visit them,
//! which may be never for a cold key range. FADE turns the legal
//! deadline into an engine parameter.
//!
//! Run with: `cargo run --example gdpr_erasure`

use std::sync::Arc;

use acheron::{Db, DbOptions};
use acheron_vfs::MemFs;

/// The "regulatory deadline", in engine ticks (1 tick = 1 write here).
const DEADLINE: u64 = 50_000;

fn ingest_users(db: &Db, n: u64) {
    for i in 0..n {
        let key = format!("user:{i:08}:profile");
        db.put(key.as_bytes(), format!("profile-data-for-{i}").as_bytes())
            .unwrap();
    }
}

fn run(label: &str, opts: DbOptions) {
    let db = Db::open(Arc::new(MemFs::new()), "db", opts).unwrap();

    // A year of normal operation.
    ingest_users(&db, 10_000);

    // 500 users exercise their right to erasure.
    for i in (0..10_000u64).step_by(20) {
        db.delete(format!("user:{i:08}:profile").as_bytes())
            .unwrap();
    }

    // The service keeps running — but never touches those users again.
    for i in 0..30_000u64 {
        db.put(format!("event:{i:010}").as_bytes(), b"telemetry")
            .unwrap();
    }
    // Idle time passes (ticks without writes); routine maintenance runs
    // on a timer, here modeled as stepped clock advances.
    let mut advanced = 0;
    while advanced < 2 * DEADLINE {
        db.advance_clock(DEADLINE / 32);
        advanced += DEADLINE / 32;
        db.maintain().unwrap();
    }

    let live = db.live_tombstones();
    let oldest = db.oldest_live_tombstone_age();
    let purged = db
        .stats()
        .tombstones_purged
        .load(std::sync::atomic::Ordering::Relaxed);
    println!("\n[{label}]");
    println!("  erasure requests:           500");
    println!("  physically erased:          {purged}");
    println!("  still recoverable from disk: {live}");
    match oldest {
        Some(age) => println!(
            "  oldest surviving tombstone: {age} ticks old ({})",
            if age > DEADLINE {
                "DEADLINE EXCEEDED"
            } else {
                "within deadline"
            }
        ),
        None => println!("  oldest surviving tombstone: none"),
    }
}

fn main() {
    println!("Regulatory deadline: {DEADLINE} ticks");
    run("vanilla LSM (no persistence bound)", DbOptions::small());
    run(
        &format!("FADE, D_th = {DEADLINE}"),
        DbOptions::small().with_fade(DEADLINE),
    );
    println!(
        "\nThe vanilla engine still holds every byte of the \"erased\" users' data;\n\
         FADE physically removed all of it within the configured deadline."
    );
}
