//! Quickstart: open a database, write, read, delete, scan.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use acheron::{Db, DbOptions};
use acheron_vfs::{StdFs, TempDir};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Real files under a temp dir; MemFs works identically for tests.
    let dir = TempDir::new("quickstart");
    let fs = Arc::new(StdFs::new(false));
    let db = Db::open(fs, dir.path_str(), DbOptions::default())?;

    // Writes.
    db.put(b"user:1:name", b"Ada Lovelace")?;
    db.put(b"user:1:email", b"ada@example.com")?;
    db.put(b"user:2:name", b"Alan Turing")?;

    // Point reads.
    let name = db.get(b"user:1:name")?.expect("present");
    println!("user:1:name = {}", String::from_utf8_lossy(&name));

    // Updates are just puts; the newest version wins.
    db.put(b"user:1:email", b"countess@example.com")?;
    let email = db.get(b"user:1:email")?.expect("present");
    println!("user:1:email = {}", String::from_utf8_lossy(&email));

    // Range scans over the sort key.
    println!("\nall user:1 attributes:");
    for (k, v) in db.scan(b"user:1:", b"user:1:\xff")? {
        println!(
            "  {} = {}",
            String::from_utf8_lossy(&k),
            String::from_utf8_lossy(&v)
        );
    }

    // Deletes insert tombstones; reads hide the key immediately.
    db.delete(b"user:2:name")?;
    assert_eq!(db.get(b"user:2:name")?, None);

    // Snapshots give a consistent view while writes continue.
    let snap = db.snapshot();
    db.put(b"user:1:name", b"A. Lovelace")?;
    assert_eq!(
        db.get_at(&snap, b"user:1:name")?.as_deref(),
        Some(&b"Ada Lovelace"[..])
    );
    assert_eq!(
        db.get(b"user:1:name")?.as_deref(),
        Some(&b"A. Lovelace"[..])
    );
    drop(snap);

    // A sort-key range delete erases a whole prefix with one O(1)
    // write — no scan, no per-key tombstones. All of user:1's
    // attributes vanish at once (the GDPR-request shape).
    db.range_delete_keys(b"user:1:", b"user:1:\xff")?;
    assert_eq!(db.get(b"user:1:name")?, None);
    assert_eq!(db.get(b"user:1:email")?, None);
    assert_eq!(db.scan(b"user:1:", b"user:1:\xff")?.len(), 0);

    // Engine introspection.
    db.compact_all()?;
    println!("\nlevel summary after compaction:");
    for level in db.level_summary() {
        if level.files > 0 {
            println!(
                "  L{}: {} files, {} bytes, {} entries",
                level.level, level.files, level.bytes, level.entries
            );
        }
    }
    println!(
        "\nwrite amplification so far: {:.2}",
        db.stats().write_amplification()
    );
    Ok(())
}
