//! Delete-lifecycle audit, end to end: age a database with a
//! delete-heavy workload on a real directory, force maintenance so
//! FADE resolves every cohort, then print the audit `acheron audit`
//! would render — and leave the directory behind so the CLI can judge
//! it offline:
//!
//! ```text
//! cargo run --example audit_demo -- /tmp/audit-demo-db
//! acheron audit /tmp/audit-demo-db --d-th 20000   # exits 0
//! ```
//!
//! Run with: `cargo run --example audit_demo -- [db-directory]`

use std::sync::Arc;

use acheron::{Db, DbOptions};
use acheron_vfs::StdFs;

/// The delete persistence threshold (`D_th`), in engine ticks.
const D_TH: u64 = 20_000;

fn main() {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "audit-demo-db".to_string());
    std::fs::create_dir_all(&dir).expect("create db directory");

    let opts = DbOptions {
        write_buffer_bytes: 64 << 10,
        level1_target_bytes: 256 << 10,
        target_file_bytes: 64 << 10,
        ..DbOptions::default()
    }
    .with_fade(D_TH);
    let db = Db::open(Arc::new(StdFs::new(false)), &dir, opts).unwrap();

    // A delete-heavy tenant: 40% of written keys are later erased.
    for i in 0..5_000u64 {
        db.put(
            format!("user:{i:06}").as_bytes(),
            format!("profile-record-{i}").as_bytes(),
        )
        .unwrap();
    }
    for i in 0..2_000u64 {
        db.delete(format!("user:{i:06}").as_bytes()).unwrap();
    }

    // The service keeps running well past the deadline; routine
    // maintenance lets FADE schedule the purging compactions.
    for i in 0..(3 * D_TH) {
        if i % 4_096 == 0 {
            db.maintain().unwrap();
        }
        db.put(format!("event:{i:08}").as_bytes(), b"telemetry")
            .unwrap();
    }
    db.maintain().unwrap();
    db.wait_idle().unwrap();

    let audit = db.delete_audit();
    print!("{}", audit.render());
    if !audit.ok() {
        eprintln!("audit failed — D_th was violated");
        std::process::exit(1);
    }
    println!("(database left in {dir} — try: acheron audit {dir} --d-th {D_TH})");
}
